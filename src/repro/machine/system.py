"""Machine-neutral system assembly: cores, caches, buses and memory.

:class:`System` owns everything every machine model's build shares —
core assembly (front-end, back-end, predictors, line buffers, iTLB),
per-group cache hardware (shared or private I-cache, L2 hierarchy,
I-interconnect, MSHRs), the runtime coordinator, kernel component
registration with the sleep/wake wiring, L2 warm-up and result
collection. A machine model subclasses it with only its topology rule,
its per-core parameters and its registry name; the ACMP
(:mod:`repro.acmp`) and the symmetric CMP (:mod:`repro.scmp`) are both
thin wirings over this class.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar

from repro.backend.backend import CommitEngine
from repro.branch.fetch_predictor import FetchPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.loop import LoopPredictor
from repro.cache.line_buffer import LineBufferSet
from repro.cache.set_assoc import SetAssociativeCache
from repro.engine import EventQueue
from repro.errors import ConfigurationError
from repro.frontend.engine import FetchEngine
from repro.frontend.itlb import InstructionTlb
from repro.frontend.ports import PrivateIcachePort, SharedIcacheGroup
from repro.interconnect.arbitration import WeightedArbiter, make_arbiter
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.multibus import MultiBus
from repro.machine.components import (
    CoreCommitComponent,
    CoreFrontendComponent,
    CoreScheduleState,
    GroupInterconnectComponent,
)
from repro.machine.config import BaseMachineConfig
from repro.machine.results import CacheGroupResult, CoreResult, SimulationResult
from repro.machine.topology import CacheGroup, Topology
from repro.memory.controller import FcfsBus, MemoryController
from repro.memory.dram import DramModel
from repro.memory.hierarchy import InstructionHierarchy
from repro.runtime.coordinator import RuntimeCoordinator
from repro.runtime.threads import ThreadContext, ThreadState
from repro.trace.records import SyncKind, SyncRecord, TraceRecord
from repro.trace.stream import TraceSet, TraceStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.warm import WarmState

__all__ = ["Core", "System", "scale_serial_ipc", "warm_shape_digest"]


@dataclass
class Core:
    """One assembled core: front-end + back-end + runtime context."""

    core_id: int
    context: ThreadContext
    frontend: FetchEngine
    backend: CommitEngine
    is_master: bool = False
    cache_group: CacheGroup | None = None


@dataclass
class _GroupHardware:
    """Hardware instantiated for one cache group."""

    group: CacheGroup
    cache: SetAssociativeCache
    hierarchy: InstructionHierarchy
    shared: SharedIcacheGroup | None = None  # None for private groups
    private_ports: dict[int, PrivateIcachePort] = field(default_factory=dict)


def scale_serial_ipc(
    records: list[TraceRecord], factor: float
) -> list[TraceRecord]:
    """Scale the IPC of a thread's *serial* sections by ``factor``.

    Serial sections are the record spans outside ``PARALLEL_START`` /
    ``PARALLEL_END`` brackets. Machine models whose core 0 is leaner
    than the machine the traces were measured on (the symmetric CMP's
    uniform lean cores vs the ACMP's big master) use this to replay the
    serial phases at the lean core's commit rate; parallel-section IPC,
    measured on lean cores already, is untouched.
    """
    from repro.trace.records import IpcRecord

    out: list[TraceRecord] = []
    in_parallel = 0
    for record in records:
        if isinstance(record, SyncRecord):
            if record.kind is SyncKind.PARALLEL_START:
                in_parallel += 1
            elif record.kind is SyncKind.PARALLEL_END:
                in_parallel = max(0, in_parallel - 1)
        elif isinstance(record, IpcRecord) and not in_parallel:
            record = IpcRecord(record.ipc * factor)
        out.append(record)
    return out


def warm_shape_digest(config: BaseMachineConfig, topology: Topology) -> str:
    """Digest of exactly the structural parameters warm state depends on.

    Warm microarchitectural state — cache tags and replacement order,
    line buffers, iTLB translations, predictor tables — is a function of
    the executed instruction stream and the *shapes* of those
    structures, never of timing parameters (latencies, bus widths,
    arbitration, queue depths). Two design points with equal digests
    therefore hold interchangeable warm state; the checkpoint store
    keys on this digest so a whole campaign's timing sweep shares one
    set of warming checkpoints per trace prefix.
    """
    shape = {
        "core_count": config.core_count,
        "groups": [
            [group.size_bytes, list(group.core_ids), bool(group.shared)]
            for group in topology.groups
        ],
        "icache": [
            config.icache_ways,
            config.icache_line_bytes,
            config.icache_policy,
        ],
        "line_buffers": config.line_buffers,
        "itlb": [
            bool(config.itlb_enabled),
            config.itlb_entries,
            bool(config.shared_itlb),
        ],
        "predictor": [
            config.gshare_bytes,
            config.loop_predictor_entries,
            bool(config.shared_fetch_predictor),
        ],
        "l2": [config.l2_bytes, config.l2_ways],
    }
    payload = json.dumps(shape, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class System:
    """The complete simulated machine for one (config, trace set) pair.

    Subclass hooks (everything else is shared):

    * :attr:`machine_name` — the model's registry name, stamped into
      results.
    * :meth:`_build_topology` — partition the cores into cache groups.
    * :meth:`_mispredict_penalty` — per-core redirect penalty.
    * :meth:`_thread_records` — the trace records a core replays
      (override to transform, e.g. lean-core serial IPC scaling).
    """

    #: Registry name of the machine model; stamped into results.
    machine_name: ClassVar[str] = "machine"

    def __init__(
        self,
        config: BaseMachineConfig,
        traces: TraceSet,
        *,
        hollow: bool = False,
    ) -> None:
        if traces.thread_count != config.core_count:
            raise ConfigurationError(
                f"trace set has {traces.thread_count} threads but the "
                f"{self.machine_name} machine has {config.core_count} cores"
            )
        self.config = config
        self.traces = traces
        #: Hollow systems skip allocation of the large dense tables
        #: (cache tag arrays, gshare counters) and are only valid after
        #: :meth:`restore_warm_state` adopts a snapshot's storage — the
        #: sampled simulator's short-lived measurement machines, whose
        #: fresh tables would be overwritten before first use anyway.
        self.hollow = hollow
        self._warm_shape: str | None = None
        self.topology: Topology = self._build_topology()
        self.events = EventQueue()

        dram = DramModel(core_ghz=config.core_ghz)
        l2_bus = FcfsBus(
            width_bytes=config.l2_bus_width_bytes, latency=config.l2_bus_latency
        )
        self.memory_controller = MemoryController(dram=dram, bus=l2_bus)

        self.contexts = [
            ThreadContext(thread_id=i) for i in range(config.core_count)
        ]
        self.runtime = RuntimeCoordinator(self.contexts)

        self.cores: list[Core] = []
        self.group_hardware: list[_GroupHardware] = []
        #: Interconnect components registered with the kernel; the
        #: simulator aggregates their batched-busy counters after a run.
        self.interconnect_components: list[GroupInterconnectComponent] = []
        #: Per-core schedule states registered with the kernel; the
        #: simulator aggregates their commit-replay counters after a run.
        self.schedule_states: list[CoreScheduleState] = []
        self._build()

    # -- machine hooks -----------------------------------------------------

    def _build_topology(self) -> Topology:
        """Partition the cores into cache groups (machine-specific)."""
        raise NotImplementedError

    def _mispredict_penalty(self, core_id: int) -> int:
        """Redirect penalty of one core (machine-specific)."""
        raise NotImplementedError

    def _thread_records(self, thread_id: int) -> list[TraceRecord]:
        """Records core ``thread_id`` replays (identity by default)."""
        return self.traces.threads[thread_id].records

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        config = self.config
        # Build cores first (they provide fill callbacks to the ports).
        for core_id in range(config.core_count):
            self.cores.append(self._build_core(core_id))
        # Then build per-group cache hardware and attach ports.
        for group in self.topology.groups:
            hardware = self._build_group(group)
            self.group_hardware.append(hardware)
            for core_id in group.core_ids:
                core = self.cores[core_id]
                core.cache_group = group
                if hardware.shared is not None:
                    core.frontend.port = hardware.shared.port_for(core_id)
                else:
                    core.frontend.port = hardware.private_ports[core_id]

    def _build_core(self, core_id: int) -> Core:
        config = self.config
        is_master = core_id == 0
        context = self.contexts[core_id]
        predictor = FetchPredictor(
            direction=GsharePredictor(
                config.gshare_bytes, allocate=not self.hollow
            ),
            loop=LoopPredictor(config.loop_predictor_entries),
        )
        line_buffers = LineBufferSet(
            count=config.line_buffers, line_bytes=config.icache_line_bytes
        )
        backend = CommitEngine(iq_capacity=config.iq_capacity)
        itlb = (
            InstructionTlb(config.itlb_entries, miss_penalty=config.itlb_miss_penalty)
            if config.itlb_enabled
            else None
        )
        frontend = FetchEngine(
            core_id=core_id,
            context=context,
            stream=TraceStream(self._thread_records(core_id)),
            predictor=predictor,
            line_buffers=line_buffers,
            port=None,  # attached by _build
            runtime=self.runtime,
            ftq_capacity=config.ftq_capacity,
            mispredict_penalty=self._mispredict_penalty(core_id),
            line_bytes=config.icache_line_bytes,
            itlb=itlb,
        )
        frontend.attach_backend(backend, iq_capacity=config.iq_capacity)
        return Core(
            core_id=core_id,
            context=context,
            frontend=frontend,
            backend=backend,
            is_master=is_master,
        )

    def _build_group(self, group: CacheGroup) -> _GroupHardware:
        config = self.config
        cache = SetAssociativeCache(
            group.size_bytes,
            config.icache_ways,
            config.icache_line_bytes,
            policy=config.icache_policy,
            name=f"icache[{group.index}]",
            allocate=not self.hollow,
        )
        hierarchy = InstructionHierarchy(
            self.memory_controller,
            l2_size_bytes=config.l2_bytes,
            l2_ways=config.l2_ways,
            l2_latency=config.l2_latency,
            line_bytes=config.icache_line_bytes,
            name=f"l2[{group.index}]",
            allocate=not self.hollow,
        )
        hardware = _GroupHardware(group=group, cache=cache, hierarchy=hierarchy)
        if group.shared:
            arbiter_factory = self._arbiter_factory(group)
            if config.interconnect == "crossbar":
                interconnect: MultiBus = Crossbar(
                    requester_count=len(group.core_ids),
                    bank_count=config.bus_count,
                    width_bytes=config.bus_width_bytes,
                    line_bytes=config.icache_line_bytes,
                    arbiter_factory=arbiter_factory,
                    name=f"i-crossbar[{group.index}]",
                )
            else:
                interconnect = MultiBus(
                    requester_count=len(group.core_ids),
                    bus_count=config.bus_count,
                    width_bytes=config.bus_width_bytes,
                    latency=config.bus_latency,
                    line_bytes=config.icache_line_bytes,
                    arbiter_factory=arbiter_factory,
                    name=f"i-interconnect[{group.index}]",
                )
            if config.shared_fetch_predictor:
                shared_predictor = FetchPredictor(
                    direction=GsharePredictor(
                        config.gshare_bytes, allocate=not self.hollow
                    ),
                    loop=LoopPredictor(config.loop_predictor_entries),
                )
                for core_id in group.core_ids:
                    self.cores[core_id].frontend.predictor = shared_predictor
            if config.shared_itlb:
                shared_itlb = InstructionTlb(
                    config.itlb_entries, miss_penalty=config.itlb_miss_penalty
                )
                for core_id in group.core_ids:
                    self.cores[core_id].frontend.itlb = shared_itlb
            fill_callbacks = {
                core_id: self.cores[core_id].frontend.on_fill
                for core_id in group.core_ids
            }
            hardware.shared = SharedIcacheGroup(
                core_ids=list(group.core_ids),
                cache=cache,
                hierarchy=hierarchy,
                interconnect=interconnect,
                scheduler=self.events.schedule,
                fill_callbacks=fill_callbacks,
                icache_latency=config.icache_latency,
                mshr_capacity=config.mshr_capacity,
            )
        else:
            (core_id,) = group.core_ids
            hardware.private_ports[core_id] = PrivateIcachePort(
                core_id=core_id,
                cache=cache,
                hierarchy=hierarchy,
                scheduler=self.events.schedule,
                on_fill=self.cores[core_id].frontend.on_fill,
                latency=config.icache_latency,
            )
        return hardware

    def _arbiter_factory(self, group: CacheGroup):
        """Arbitration policy for one shared group's buses.

        The ``icount`` policy implements the Section VII observation that
        "the arbitration policy on an I-bus becomes the fetching policy":
        like SMT ICOUNT, it grants the bus to the core whose instruction
        queue is emptiest (the most starved front-end).
        """
        config = self.config
        if config.arbitration != "icount":
            return lambda n: make_arbiter(config.arbitration, n)
        slot_cores = [self.cores[core_id] for core_id in group.core_ids]

        def urgency(slot: int) -> float:
            return -float(slot_cores[slot].backend.iq_count)

        return lambda n: WeightedArbiter(n, urgency)

    # -- kernel wiring ---------------------------------------------------

    def register_components(self, kernel) -> None:
        """Build and register the machine's scheduler components.

        The kernel must share :attr:`events`. Registration order — all
        front-ends in core order, then the shared interconnects in
        group order, then all back-ends in core order — reproduces the
        stepped engine's per-cycle order of operations exactly, which
        keeps scheduled runs deterministic and bit-identical to
        ``cycle_skip=False`` reference runs.

        Also wires the wake plumbing: fill completions and barrier/lock
        hand-offs return sleeping cores to the run list, new bus
        requests wake idle interconnects, and in-flight request
        lifecycle transitions settle sleeping cores' batched stall
        attribution. The commit-replay lever additionally needs the
        watchdog plumbing (batched commits report their true cycle to
        the kernel, and windows never cross the firing horizon) and the
        ICOUNT observability gate: a core whose ``iq_count`` feeds a
        shared group's urgency-based arbitration must keep its queue
        count current every cycle, so it only opens constant-count
        pacing windows.
        """
        states = [CoreScheduleState(core) for core in self.cores]
        self.schedule_states = states
        guard = lambda: kernel.last_progress + kernel.stall_limit + 1  # noqa: E731
        for state in states:
            state.note_progress = kernel.note_progress
            state.progress_guard = guard
        tracer = getattr(kernel, "tracer", None)
        if tracer is not None:
            # Timeline tracing: settled replay windows become spans on
            # the owning core's track (cycle domain; deterministic).
            from repro.obs.timeline import SIM_PID

            base = kernel._ts_base
            for state in states:

                def trace_window(
                    kind: str,
                    start: int,
                    cycles: int,
                    *,
                    _core_id: int = state.core.core_id,
                ) -> None:
                    tracer.complete(
                        f"replay:{kind}",
                        cat="replay",
                        ts=base + start,
                        dur=cycles,
                        pid=SIM_PID,
                        tid=1000 + _core_id,
                    )

                state.trace_window = trace_window
                tracer.set_thread_name(
                    SIM_PID,
                    1000 + state.core.core_id,
                    f"core{state.core.core_id}:replay-windows",
                )
        if self.config.arbitration == "icount":
            for group in self.topology.groups:
                if not group.shared:
                    continue
                for core_id in group.core_ids:
                    states[core_id].iq_observed = True
        fronts = [
            CoreFrontendComponent(core, state)
            for core, state in zip(self.cores, states)
        ]
        commits = [
            CoreCommitComponent(core, state)
            for core, state in zip(self.cores, states)
        ]
        for front in fronts:
            kernel.register(front)
        for hardware in self.group_hardware:
            if hardware.shared is None:
                continue
            component = GroupInterconnectComponent(hardware.shared)
            kernel.register(component)
            self.interconnect_components.append(component)
            hardware.shared.activity_listener = (
                lambda c=component: kernel.wake(c)
            )
        for commit in commits:
            kernel.register(commit)

        for state, front in zip(states, fronts):
            state.wake_front = lambda f=front: kernel.wake(f)

        def wake_core(core_id: int) -> None:
            kernel.wake(fronts[core_id])
            kernel.wake(commits[core_id])

        def settle_core(core_id: int, now: int) -> None:
            states[core_id].stall_transition(now)

        self.runtime.wake_listener = lambda thread_id, _now: wake_core(
            thread_id
        )
        for hardware in self.group_hardware:
            if hardware.shared is not None:
                hardware.shared.wake_listener = wake_core
                hardware.shared.stall_listener = settle_core
            else:
                for port in hardware.private_ports.values():
                    port.wake_listener = wake_core

    def all_finished(self) -> bool:
        """True when every thread consumed its trace and drained."""
        return all(
            core.context.state is ThreadState.FINISHED for core in self.cores
        )

    # -- warm-up ---------------------------------------------------------

    def warm_instruction_l2s(self) -> int:
        """Pre-fill every instruction-side L2 with the traces' code lines.

        The paper's runs execute >= 20 G instructions, so the 1 MB L2
        effectively always holds the (at most tens of KB) code footprint;
        on short synthetic traces, cold L2 misses would otherwise charge
        DRAM latency to first touches and distort execution-time ratios.
        I-caches are NOT warmed: their cold misses are part of the studied
        behaviour (Fig. 11).

        Returns the number of distinct lines installed per L2.
        """
        line_bytes = self.config.icache_line_bytes
        lines: set[int] = set()
        for thread in self.traces.threads:
            for block in thread.basic_blocks():
                first = block.address & ~(line_bytes - 1)
                for line in range(first, block.end_address, line_bytes):
                    lines.add(line)
        for hardware in self.group_hardware:
            for line in lines:
                hardware.hierarchy.l2.fill(line)
        return len(lines)

    # -- warm-state checkpoints --------------------------------------------

    def warm_shape(self) -> str:
        """This system's warm-shape digest (see :func:`warm_shape_digest`)."""
        if self._warm_shape is None:
            self._warm_shape = warm_shape_digest(self.config, self.topology)
        return self._warm_shape

    def capture_warm_state(self) -> "WarmState":
        """Snapshot the warm microarchitectural structures.

        Covers the state sampled simulation must carry across skipped
        regions — L1I/L2 tags and replacement state, line buffers, iTLB
        translations, branch-predictor tables — and none of the
        transient timing state (FTQ/IQ occupancy, in-flight requests),
        which drains at interval boundaries. Group-shared predictors
        and iTLBs are captured once and referenced by index from every
        member core. Large tables are captured by reference; see
        :mod:`repro.machine.warm` for the sharing contract.
        """
        from repro.machine.warm import WarmState

        state = WarmState(
            machine=self.machine_name,
            config_label=self.config.label(),
            shape=self.warm_shape(),
        )
        predictor_index: dict[int, int] = {}
        itlb_index: dict[int, int] = {}
        for core in self.cores:
            frontend = core.frontend
            pred_ref = predictor_index.get(id(frontend.predictor))
            if pred_ref is None:
                pred_ref = len(state.predictors)
                predictor_index[id(frontend.predictor)] = pred_ref
                state.predictors.append(frontend.predictor.warm_state())
            itlb_ref = None
            if frontend.itlb is not None:
                itlb_ref = itlb_index.get(id(frontend.itlb))
                if itlb_ref is None:
                    itlb_ref = len(state.itlbs)
                    itlb_index[id(frontend.itlb)] = itlb_ref
                    state.itlbs.append(frontend.itlb.warm_state())
            state.cores.append(
                {
                    "line_buffers": frontend.line_buffers.warm_state(),
                    "predictor": pred_ref,
                    "itlb": itlb_ref,
                }
            )
        for hardware in self.group_hardware:
            state.groups.append(
                {
                    "icache": hardware.cache.warm_state(),
                    "l2": hardware.hierarchy.l2.warm_state(),
                }
            )
        return state

    def restore_warm_state(self, state: "WarmState") -> None:
        """Install a warm-state snapshot captured on the same design point.

        The target must be a freshly-built (or otherwise identically
        shaped) system of the same machine model and configuration
        label; structure shapes are validated as they are adopted.
        Shared predictors/iTLBs are restored once per unique structure,
        in the same discovery order capture used — identical wiring on
        both sides, since the configuration is identical.
        """
        state.check_compatible(
            self.machine_name, self.config.label(), self.warm_shape()
        )
        if len(state.cores) != len(self.cores) or len(state.groups) != len(
            self.group_hardware
        ):
            raise ConfigurationError(
                f"warm state shape ({len(state.cores)} cores, "
                f"{len(state.groups)} groups) does not match this system "
                f"({len(self.cores)} cores, {len(self.group_hardware)} "
                f"groups)"
            )
        try:
            predictor_seen: dict[int, int] = {}
            itlb_seen: dict[int, int] = {}
            for core, core_state in zip(self.cores, state.cores):
                frontend = core.frontend
                frontend.line_buffers.load_warm_state(
                    core_state["line_buffers"]
                )
                pred_ref = core_state["predictor"]
                if id(frontend.predictor) not in predictor_seen:
                    predictor_seen[id(frontend.predictor)] = pred_ref
                    frontend.predictor.load_warm_state(
                        state.predictors[pred_ref]
                    )
                elif predictor_seen[id(frontend.predictor)] != pred_ref:
                    raise ConfigurationError(
                        "warm state predictor sharing does not match the "
                        "system's wiring"
                    )
                itlb_ref = core_state["itlb"]
                if (frontend.itlb is None) != (itlb_ref is None):
                    raise ConfigurationError(
                        "warm state iTLB presence does not match the system"
                    )
                if frontend.itlb is not None:
                    if id(frontend.itlb) not in itlb_seen:
                        itlb_seen[id(frontend.itlb)] = itlb_ref
                        frontend.itlb.load_warm_state(state.itlbs[itlb_ref])
                    elif itlb_seen[id(frontend.itlb)] != itlb_ref:
                        raise ConfigurationError(
                            "warm state iTLB sharing does not match the "
                            "system's wiring"
                        )
            for hardware, group_state in zip(
                self.group_hardware, state.groups
            ):
                hardware.cache.load_warm_state(group_state["icache"])
                hardware.hierarchy.l2.load_warm_state(group_state["l2"])
        except (ValueError, KeyError, IndexError, TypeError) as exc:
            raise ConfigurationError(
                f"warm state does not fit this system: {exc}"
            ) from exc

    # -- result collection --------------------------------------------------

    def collect_results(self, cycles: int) -> SimulationResult:
        result = SimulationResult(
            benchmark=self.traces.benchmark,
            config_label=self.config.label(),
            cycles=cycles,
            machine=self.machine_name,
        )
        seen_predictors: set[int] = set()
        seen_itlbs: set[int] = set()
        for core in self.cores:
            lb_stats = core.frontend.line_buffers.stats
            predictor = core.frontend.predictor
            # With a shared fetch predictor, report its (group-level)
            # counters once — on the first member — to avoid multiplying
            # them in per-cluster aggregations.
            if id(predictor) in seen_predictors:
                predictor_lookups = 0
                predictor_mispredictions = 0
            else:
                seen_predictors.add(id(predictor))
                predictor_lookups = predictor.stats.overall_lookups
                predictor_mispredictions = predictor.stats.overall_mispredictions
            # Shared iTLBs follow the same rule: group-level counters are
            # attributed to the first member core, never multiplied.
            itlb = core.frontend.itlb
            if itlb is None or id(itlb) in seen_itlbs:
                itlb_lookups = 0
                itlb_misses = 0
            else:
                seen_itlbs.add(id(itlb))
                itlb_lookups = itlb.stats.lookups
                itlb_misses = itlb.stats.misses
            result.cores.append(
                CoreResult(
                    core_id=core.core_id,
                    committed=core.backend.stats.committed,
                    base_cycles=core.backend.stats.base_cycles,
                    stall_cycles=dict(core.backend.stats.stall_cycles),
                    blocks_fetched=core.frontend.stats.blocks_fetched,
                    redirects=core.frontend.stats.redirects,
                    line_requests=lb_stats.line_requests,
                    buffer_hits=lb_stats.buffer_hits,
                    cache_fetches=lb_stats.cache_fetches,
                    branch_lookups=predictor_lookups,
                    branch_mispredictions=predictor_mispredictions,
                    sync_block_cycles=core.context.block_cycles,
                    itlb_lookups=itlb_lookups,
                    itlb_misses=itlb_misses,
                )
            )
        for hardware in self.group_hardware:
            stats = hardware.cache.stats
            l2_stats = hardware.hierarchy.l2.stats
            if hardware.shared is not None:
                # A transfer still draining when the run ends was never
                # stepped past the final cycle: settle its batched busy
                # accounting exactly where a stepped run stopped.
                hardware.shared.settle_busy(cycles)
                bus_tx = hardware.shared.interconnect.total_transactions()
                bus_wait = hardware.shared.interconnect.total_wait_cycles()
                bus_busy = sum(
                    bus.stats.busy_cycles
                    for bus in hardware.shared.interconnect.buses
                )
                merges = hardware.shared.mshrs.stats.merges
            else:
                bus_tx = bus_wait = bus_busy = merges = 0
            result.cache_groups.append(
                CacheGroupResult(
                    index=hardware.group.index,
                    core_ids=hardware.group.core_ids,
                    size_bytes=hardware.group.size_bytes,
                    accesses=stats.accesses,
                    hits=stats.hits,
                    misses=stats.misses,
                    compulsory_misses=stats.compulsory_misses,
                    mshr_merges=merges,
                    l2_accesses=l2_stats.accesses,
                    l2_misses=l2_stats.misses,
                    bus_transactions=bus_tx,
                    bus_wait_cycles=bus_wait,
                    bus_busy_cycles=bus_busy,
                )
            )
        result.dram_accesses = self.memory_controller.dram.stats.accesses
        result.lock_hand_offs = self.runtime.lock_hand_offs
        return result
