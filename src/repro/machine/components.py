"""Per-core kernel components shared by every machine model (ready/wake).

The stepped engine's per-cycle order of operations (front-ends, shared
interconnects, back-ends) becomes one
:class:`~repro.engine.kernel.ScheduledComponent` per core front-end,
per shared interconnect group and per core back-end, registered with
the :class:`~repro.engine.SimulationKernel` in that order. The
components are machine-neutral: any model built from cores, cache
groups and shared interconnects (the ACMP, the symmetric CMP) registers
the same classes and gets sleep/wake + clock jumps for free.

The two components of one core share a :class:`CoreScheduleState`,
which derives both sleep plans from one decision per cycle:

* **front-end-only sleep** — the back-end is committing (or about to),
  so it stays live and keeps exact per-cycle credit/stall accounting,
  while the stalled front-end leaves the run list. If the front-end's
  only enabler is instruction-queue room (``space_gated``), every live
  commit wakes it; otherwise a fill event or cycle timer does.
* **unit idle sleep** — the queue is empty and the front-end certified
  a quiescent window: both components sleep, and the elided back-end
  cycles are batch-charged to the stall cause observed at the window
  start (:meth:`~repro.backend.backend.CommitEngine.idle_steps`). When
  an in-flight line request changes lifecycle state mid-window (bus
  grant, cache access), the port's ``stall_listener`` settles the old
  cause up to the transition cycle and re-pins — the piecewise charge
  matches a stepped run's per-cycle attribution exactly. A blocked core
  sleeps this way with the cause pinned to ``"sync"`` until the runtime
  coordinator's barrier/lock hand-off listener wakes it.
* **commit-replay sleep** — the front-end is quiescent and the queue is
  non-empty: every coming back-end cycle is a commit or sub-unit pacing
  step (never a stall) until the queue drains, and the whole trajectory
  is deterministic (no pushes, no IPC retargets while the front-end
  sleeps). Both components sleep across a window bounded by the
  front-end's own wake (cycles-to-next-fetch-need: fills, redirect and
  iTLB timers, runtime hand-offs cut it short), the cycle a space-gated
  front-end must re-act, the cycle after the queue drains, and the
  deadlock watchdog's firing horizon; on wake the elided commits are
  batch-settled (:meth:`~repro.backend.backend.CommitEngine.
  replay_steps`) and the cycle of the last replayed commit is reported
  to the kernel (:meth:`~repro.engine.SimulationKernel.note_progress`)
  so the watchdog still fires at the stepped engine's exact cycle. The
  queue count *changes* inside the window, so cores whose ``iq_count``
  is observed cross-core (the ICOUNT arbiter's urgency callback) never
  open one — they fall back to the pacing window below.
* **redirect-replay sleep** — a mispredicted branch is draining and the
  FTQ is already empty: nothing can fill, issue or extract until fetch
  resumes, so the remaining trajectory is fully decided — commits to
  the exact drain cycle (:meth:`~repro.backend.backend.CommitEngine.
  drain_horizon`), the drain-complete transition the front-end would
  perform one cycle later (:meth:`~repro.frontend.engine.FetchEngine.
  begin_redirect` replays it), then pure ``"branch"`` stalls until the
  mispredict penalty elapses. Both components sleep to the fetch-resume
  cycle and the whole span settles in one batch, bounded by the same
  guards as commit replay (shared-ICOUNT observation disables it, the
  watchdog's firing horizon caps it, the front-end's own wake — iTLB
  timers — cuts it short). The elided penalty stalls are surfaced
  through :attr:`~repro.engine.kernel.KernelStats.
  redirect_cycles_batched`.
* **unit pacing sleep** — the queue is non-empty but the commit credit
  stays below 1.0 until a known cycle
  (:meth:`~repro.backend.backend.CommitEngine.cycles_to_next_commit`);
  the elided cycles are pure sub-unit pacing
  (:meth:`~repro.backend.backend.CommitEngine.pacing_steps`) and the
  core wakes on the commit cycle. The queue count is constant inside
  the window, so cross-core observers (the ICOUNT arbiter's urgency
  callback) always read current state — the fallback that keeps
  ICOUNT-arbitrated cores elidable.

A finished core sleeps without a window — a stepped run does nothing
for it either. Every mode is conservative: a component that cannot
prove quiescence simply stays on the run list, which is always
equivalent (its steps are no-ops, exactly as in the reference engine).

The planning walks (``cycles_to_next_commit``, ``replay_horizon``,
``drain_horizon``) and both batched settlements (commit replay and the
redirect replay's phase-1 drain, via ``replay_steps``) all reduce to the
:class:`~repro.backend.backend.CommitEngine`'s deterministic float
credit trajectory; on the compiled kernel backend each walk runs as one
``repro.kernels.replay_walk`` call (bit-identical float additions), and
the calls taken are surfaced through
:attr:`~repro.engine.kernel.KernelStats.replay_walk_engaged`.

:class:`GroupInterconnectComponent` additionally batches **busy-cycle
accounting**: a bus occupied by an in-flight transfer does nothing per
cycle except count itself busy, so the component sleeps across the
known busy horizon (or indefinitely when no request is queued) and the
elided busy cycles are charged in one step on wake-up — or at result
collection for a transfer still draining at the end of the run. The
count of busy steps elided this way is surfaced through
:attr:`~repro.engine.kernel.KernelStats.interconnect_busy_batched`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine import NEVER
from repro.engine.kernel import MIN_TIMER_NAP
from repro.runtime.threads import ThreadState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable

    from repro.frontend.ports import SharedIcacheGroup
    from repro.machine.system import Core

#: CoreScheduleState back-end window kinds.
_NO_WINDOW = "none"
_IDLE = "idle"
_PACING = "pacing"
_REPLAY = "replay"
_REDIRECT = "redirect"

#: Longest commit-replay look-ahead (cycles). Bounds the planning walk;
#: a window that neither drains nor hits a wake inside it simply ends
#: there and re-plans.
REPLAY_CAP = 4096


class CoreScheduleState:
    """Shared sleep/wake bookkeeping for one core's two components."""

    __slots__ = (
        "core",
        "window",
        "settled_to",
        "cause",
        "front_space_needed",
        "front_asleep",
        "iq_observed",
        "wake_front",
        "note_progress",
        "progress_guard",
        "commit_cycles_batched",
        "redirect_cycles_batched",
        "trace_window",
        "_plan_cycle",
        "_plans",
        "_pending_window",
        "_pending_cause",
        "_pending_space",
        "_redirect_boundary",
        "_pending_redirect_boundary",
    )

    def __init__(self, core: Core) -> None:
        self.core = core
        #: Back-end accounting window; not _NO_WINDOW implies the
        #: commit component is deregistered and owes batched cycles.
        self.window = _NO_WINDOW
        self.settled_to = 0
        self.cause = "other"
        #: IQ room that lets a lone-sleeping front-end act again; the
        #: live back-end wakes it at the first commit reaching it.
        self.front_space_needed = 0
        #: Whether the front-end component is currently deregistered
        #: (kept by its on_sleep/on_wake hooks).
        self.front_asleep = False
        #: True when this core's ``iq_count`` is read by another
        #: component mid-cycle (the ICOUNT arbiter's urgency callback):
        #: commit-replay windows, whose elided commits leave the queue
        #: count stale until settlement, are then disabled in favour of
        #: constant-count pacing windows. Set by the system wiring.
        self.iq_observed = False
        #: Injected by the system wiring: wakes the front-end component.
        self.wake_front: Callable[[], None] | None = None
        #: Injected by the system wiring: reports the cycle of the last
        #: batch-replayed commit to the kernel's deadlock watchdog.
        self.note_progress: Callable[[int], None] = lambda cycle: None
        #: Injected by the system wiring: the cycle the kernel's
        #: watchdog would fire at; replay windows never extend past it,
        #: so their settlement (which notes elided progress) always
        #: lands before the firing check.
        self.progress_guard: Callable[[], int] = lambda: NEVER
        #: Back-end steps elided through commit-replay windows.
        self.commit_cycles_batched = 0
        #: Redirect-penalty stall cycles elided through redirect-replay
        #: windows (the idle phase past the batched drain commit).
        self.redirect_cycles_batched = 0
        #: Injected by the system wiring only when timeline tracing is
        #: on (None otherwise): ``trace_window(kind, start, cycles)``
        #: records a settled replay window span on this core's track.
        self.trace_window: Callable[[str, int, int], None] | None = None
        self._plan_cycle = -1
        self._plans: tuple[int | None, int | None] = (None, None)
        self._pending_window = _NO_WINDOW
        self._pending_cause = "other"
        self._pending_space = 0
        #: Absolute cycle a redirect-replay window's drain-complete
        #: transition happens at (the cycle after the drain commit).
        self._redirect_boundary = 0
        self._pending_redirect_boundary = 0

    # -- sleep decision (once per core per cycle) --------------------------
    # The two plan accessors inline the per-cycle memo: the kernel
    # probes both of a core's components each cycle, and this pair of
    # methods is bound directly as their ``sleep_plan`` attributes, so
    # the hot probe path is a single call deep.

    def front_plan(self, now: int) -> int | None:
        if self._plan_cycle != now:
            self._plan_cycle = now
            self._plans = self._decide(now)
        return self._plans[0]

    def commit_plan(self, now: int) -> int | None:
        if self._plan_cycle != now:
            self._plan_cycle = now
            self._plans = self._decide(now)
        return self._plans[1]

    def _decide(self, now: int) -> tuple[int | None, int | None]:
        core = self.core
        state = core.context.state
        if state is ThreadState.RUNNING:
            frontend = core.frontend
            backend = core.backend
            if (
                backend.iq_count
                and not frontend.idle_step
                and not self.front_asleep
            ):
                # The front-end just did work and the back-end is
                # draining: nothing here sleeps long enough to pay for
                # the full probe. A front-end already off the run list
                # is probed regardless — its last recorded step is
                # stale, and the draining back-end behind it is exactly
                # what the commit-replay window elides. (Empty-queue
                # cores are always probed: their idle windows are what
                # empties the ready set and lets the clock jump, and a
                # one-cycle-late onset there would cost a skipped cycle
                # per window.)
                return (None, None)
            wake_at, space_needed = frontend.sleep_state(now + 1)
            if wake_at is None:
                return (None, None)  # the front-end acts next cycle
            if backend.iq_count:
                if not self.iq_observed:
                    # Commit replay: with the front-end quiescent the
                    # whole commit trajectory is deterministic, so both
                    # components sleep across it and the elided commits
                    # settle in one batch on wake. The window never
                    # outlives the front-end's own wake (a stepped
                    # front-end could act there), the cycle a
                    # space-gated front-end must re-act, the drain
                    # point (the next cycle would stall, which needs
                    # live attribution), or the watchdog's firing cycle
                    # (settlement must note elided progress before the
                    # firing check).
                    bound = min(wake_at, self.progress_guard()) - now
                    if bound >= MIN_TIMER_NAP:
                        # Redirect replay: a mispredict drain with an
                        # empty FTQ pins the whole remaining trajectory
                        # — commits to the drain, one drain-complete
                        # transition, then pure "branch" stalls until
                        # the penalty elapses. Fuse all three into one
                        # window ending at the fetch-resume cycle; the
                        # drain must land unambiguously inside the
                        # bound so the transition (and the batched
                        # progress note) settles before the watchdog's
                        # firing check.
                        penalty = frontend.redirect_replay_penalty()
                        if penalty is not None:
                            drain_cap = min(bound - 1 - penalty, REPLAY_CAP)
                            if drain_cap >= 1:
                                drain = backend.drain_horizon(cap=drain_cap)
                                if drain is not None:
                                    resume = drain + 1 + penalty
                                    if resume >= MIN_TIMER_NAP:
                                        self._pending_window = _REDIRECT
                                        self._pending_space = 0
                                        self._pending_redirect_boundary = (
                                            now + drain + 1
                                        )
                                        wake = now + resume
                                        return (wake, wake)
                        # replay_horizon may return cap + 1 (a drain or
                        # space trigger on the last walked cycle), so
                        # the cap stays one short of the bound.
                        horizon = backend.replay_horizon(
                            space_needed, cap=min(bound - 1, REPLAY_CAP)
                        )
                        if horizon is not None and horizon >= MIN_TIMER_NAP:
                            self._pending_window = _REPLAY
                            self._pending_space = 0
                            wake = now + horizon
                            return (wake, wake)
                else:
                    ahead = backend.cycles_to_next_commit()
                    if ahead is not None and ahead >= MIN_TIMER_NAP:
                        # Unit pacing nap until the commit cycle: the
                        # queue count stays constant, so the ICOUNT
                        # urgency callback observing this core always
                        # reads current state. Commits are the only
                        # source of the queue room the space gates wait
                        # for, and none happens before the wake.
                        self._pending_window = _PACING
                        self._pending_space = 0
                        wake_at = min(wake_at, now + ahead)
                        return (wake_at, wake_at)
                # The back-end commits imminently: keep it live (exact
                # per-cycle credit and stall attribution); it wakes a
                # space-gated front-end at the commit whose freed room
                # first reaches the needed threshold.
                self._pending_window = _NO_WINDOW
                self._pending_space = space_needed
                return (wake_at, None)
            self._pending_window = _IDLE
            self._pending_cause = frontend.stall_cause(now + 1)
            self._pending_space = 0
            return (wake_at, wake_at)
        if state is ThreadState.BLOCKED:
            # Blocked implies a drained pipeline (empty FTQ and IQ);
            # every elided back-end cycle charges "sync", and the
            # runtime coordinator wakes us on the hand-off.
            self._pending_window = _IDLE
            self._pending_cause = "sync"
            self._pending_space = 0
            return (NEVER, NEVER)
        # A stepped run does nothing for a finished core either.
        self._pending_window = _NO_WINDOW
        self._pending_space = 0
        return (NEVER, NEVER)

    # -- back-end window lifecycle (driven by the commit component) --------

    def commit_slept(self, now: int) -> None:
        self.window = self._pending_window
        self.cause = self._pending_cause
        self._redirect_boundary = self._pending_redirect_boundary
        self.settled_to = now + 1

    def commit_woke(self, now: int) -> None:
        window = self.window
        self.settle(now)
        self.window = _NO_WINDOW
        if window is _REPLAY and self.front_space_needed:
            # The front-end slept on queue room before this window
            # opened around it. A live back-end would have woken it at
            # the commit whose freed room first reached the threshold;
            # the replay wake lands one cycle after that commit by
            # construction, so waking the front-end now has it step on
            # exactly the cycle a stepped run's would.
            needed = self.front_space_needed
            if self.core.backend.iq_space() >= needed and self.wake_front:
                self.wake_front()
        elif window is _REDIRECT:
            # The window outlived the front-end's own wake promise (the
            # drain-complete transition was replayed on its behalf), so
            # on any close — the planned fetch-resume cycle or an early
            # wake — hand control back to a live front-end and let it
            # re-plan; a spurious wake is merely a no-op step.
            if self.front_asleep and self.wake_front:
                self.wake_front()

    def settle(self, now: int) -> None:
        """Batch-account the elided back-end cycles ``[settled_to, now)``."""
        if self.window is _NO_WINDOW or now <= self.settled_to:
            return
        cycles = now - self.settled_to
        if self.window is _IDLE:
            self.core.backend.idle_steps(cycles, self.cause)
        elif self.window is _REPLAY:
            _committed, last_commit = self.core.backend.replay_steps(cycles)
            self.commit_cycles_batched += cycles
            if self.trace_window is not None:
                self.trace_window("commit", self.settled_to, cycles)
            if last_commit is not None:
                # The watchdog must see progress at the cycle the last
                # elided commit actually happened (a stepped run reset
                # it there), not at the settlement cycle.
                self.note_progress(self.settled_to + last_commit - 1)
        elif self.window is _REDIRECT:
            # Phase 1 — commits/pacing up to the drain: the boundary is
            # the cycle after the planned drain commit, so the span up
            # to it never crosses a stall.
            boundary = self._redirect_boundary
            cut = min(now, boundary)
            if cut > self.settled_to:
                span = cut - self.settled_to
                _committed, last_commit = self.core.backend.replay_steps(span)
                self.commit_cycles_batched += span
                if self.trace_window is not None:
                    self.trace_window("commit", self.settled_to, span)
                if last_commit is not None:
                    self.note_progress(self.settled_to + last_commit - 1)
                self.settled_to = cut
            if now >= boundary:
                # Phase 2 — the drain-complete transition a stepped
                # front-end performs at the boundary cycle, then pure
                # "branch" stalls until the penalty elapses (an early
                # wake settles the prefix; the cause stays pinned).
                self.core.frontend.begin_redirect(boundary)
                idle = now - boundary
                if idle > 0:
                    self.core.backend.idle_steps(idle, "branch")
                    self.redirect_cycles_batched += idle
                    if self.trace_window is not None:
                        self.trace_window("redirect", boundary, idle)
        else:
            self.core.backend.pacing_steps(cycles)
        self.settled_to = now

    def stall_transition(self, now: int) -> None:
        """An in-flight request changed lifecycle state at ``now``.

        Settles an idle window's old cause up to the transition and
        re-pins to the cause a stepped back-end would charge from
        ``now`` on. (Pacing windows charge no stalls, and a live
        back-end attributes per cycle anyway.)
        """
        if self.window is not _IDLE:
            return
        self.settle(now)
        if self.core.context.state is ThreadState.RUNNING:
            self.cause = self.core.frontend.stall_cause(now)


class CoreFrontendComponent:
    """One core's front-end (FTQ fill, issue, extract)."""

    __slots__ = ("core", "sched", "sleep_plan")

    def __init__(self, core: Core, sched: CoreScheduleState) -> None:
        self.core = core
        self.sched = sched
        #: Probed by the kernel every executed cycle: bound straight to
        #: the controller to keep the hot path one call deep.
        self.sleep_plan = sched.front_plan

    def step(self, now: int) -> int:
        self.core.frontend.step(now)  # no-op unless RUNNING
        return 0

    def on_sleep(self, now: int) -> None:
        self.sched.front_space_needed = self.sched._pending_space
        self.sched.front_asleep = True

    def on_wake(self, now: int) -> None:
        self.sched.front_space_needed = 0
        self.sched.front_asleep = False


class GroupInterconnectComponent:
    """One shared group's I-interconnect (arbitration and grants)."""

    __slots__ = ("group", "busy_steps_batched")

    def __init__(self, group: SharedIcacheGroup) -> None:
        self.group = group
        #: Busy-only interconnect steps elided by sleeping across a
        #: transfer's known busy horizon (batch-accounted on wake).
        self.busy_steps_batched = 0

    def sleep_plan(self, now: int) -> int | None:
        # An interconnect with no queued request grants nothing: a
        # transfer still draining only counts itself busy, which the
        # batched settlement reproduces, so the component sleeps until
        # a new request fires the group's activity listener. With
        # queued requests, the earliest possible grant is the earliest
        # bus-busy horizon: nothing observable happens before it.
        return self.group.wake_horizon(now + 1)

    def step(self, now: int) -> int:
        self.group.step(now)
        return 0

    def on_sleep(self, now: int) -> None:
        pass

    def on_wake(self, now: int) -> None:
        # Charge the busy cycles every bus accrued while this component
        # slept — exactly the per-cycle counts a stepped run made.
        self.busy_steps_batched += self.group.settle_busy(now)


class CoreCommitComponent:
    """One core's back-end; its step reports committed instructions."""

    __slots__ = ("core", "sched", "sleep_plan")

    def __init__(self, core: Core, sched: CoreScheduleState) -> None:
        self.core = core
        self.sched = sched
        self.sleep_plan = sched.commit_plan

    def step(self, now: int) -> int:
        core = self.core
        state = core.context.state
        if state is ThreadState.FINISHED:
            return 0
        if state is ThreadState.BLOCKED:
            core.backend.step(now, "sync")
            return 0
        # Pass the attribution lazily: it is only evaluated on a stall,
        # so committing cycles skip the FTQ walk.
        backend = core.backend
        committed = backend.step(now, core.frontend.stall_cause)
        if committed:
            sched = self.sched
            needed = sched.front_space_needed
            if needed and backend.iq_space() >= needed:
                # The commit freed the room the sleeping front-end
                # waits for; it re-enters the run list and acts next
                # cycle, exactly when a stepped run's would.
                sched.wake_front()
        return committed

    def on_sleep(self, now: int) -> None:
        self.sched.commit_slept(now)

    def on_wake(self, now: int) -> None:
        self.sched.commit_woke(now)
