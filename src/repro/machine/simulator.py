"""The cycle-level simulation driver, machine-model agnostic.

Per-cycle order of operations (encoded as per-core kernel components,
see :mod:`repro.machine.components`):

1. scheduled completions land (line-buffer fills, cache refills);
2. every runnable core's front-end steps (FTQ fill, issue, extract);
3. the shared I-interconnects arbitrate and process grants;
4. every core's back-end attempts to commit, charging stall cycles to
   the front-end's attribution when it starves;
5. blocked cores accumulate synchronisation wait time.

The run terminates when every thread has consumed its trace and drained
its pipeline; the cycle count at that point is the benchmark's execution
time for the configured design point.

The main loop lives in :class:`repro.engine.SimulationKernel`, an
event-driven ready/wake scheduler: components that block (a front-end
waiting on a fill, a back-end with an empty queue, a core blocked on
synchronisation, an idle interconnect) leave the run list and arm a
wake — an event or a cycle horizon — so each cycle only steps the
components with work, and when nothing is ready at all the clock jumps
straight to the next wake-up. Elided cycles are batch-accounted into
the same stall buckets a stepped run would produce. Results are
bit-identical either way; pass ``cycle_skip=False`` to force the
cycle-by-cycle reference path that steps every component every cycle.
"""

from __future__ import annotations

from dataclasses import fields as _dataclass_fields

from repro.engine import SimulationKernel
from repro.machine.config import BaseMachineConfig
from repro.machine.results import SimulationResult
from repro.machine.system import System
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import metrics_registry as _active_metrics
from repro.trace.stream import TraceSet

#: Cycles without any committed instruction before declaring a deadlock.
_STALL_LIMIT = 200_000


class SystemSimulator:
    """Runs one :class:`System` to completion on a simulation kernel."""

    def __init__(self, system: System, *, cycle_skip: bool = True) -> None:
        self.system = system
        self.kernel = SimulationKernel(
            events=system.events,
            stall_limit=_STALL_LIMIT,
            cycle_skip=cycle_skip,
        )
        system.register_components(self.kernel)
        self.kernel.set_finish_condition(system.all_finished)
        self.kernel.set_describe(self._describe)
        self.kernel.set_deadlock_detail(self._deadlock_detail)
        # Observability: the construction-time grab. None when recording
        # is disabled, so the run path costs one None check.
        self._metrics = _active_metrics()

    @property
    def cycle(self) -> int:
        """Current simulation cycle (the kernel clock's reading)."""
        return self.kernel.clock.now

    def run(self, max_cycles: int = 500_000_000) -> SimulationResult:
        """Simulate until all threads finish; return collected results.

        Raises:
            DeadlockError: when no thread commits for a long window while
                unfinished threads remain (protocol violation or bug).
        """
        try:
            cycles = self.kernel.run(max_cycles=max_cycles)
        finally:
            self._aggregate_stats()
        result = self.system.collect_results(cycles)
        if self._metrics is not None:
            result.metrics = self.run_metrics().to_payload()
        tracer = self.kernel.tracer
        if tracer is not None:
            # Lay successive runs end to end on the simulated-clock
            # track instead of stacking them all at cycle 0.
            tracer.cycle_offset = self.kernel._ts_base + cycles + 1
        return result

    def _aggregate_stats(self) -> None:
        """Fold the components' batched-accounting counters into the
        kernel's flat :class:`~repro.engine.kernel.KernelStats`."""
        self.kernel.stats.interconnect_busy_batched += sum(
            component.busy_steps_batched
            for component in self.system.interconnect_components
        )
        self.kernel.stats.commit_cycles_batched += sum(
            state.commit_cycles_batched
            for state in self.system.schedule_states
        )
        self.kernel.stats.redirect_cycles_batched += sum(
            state.redirect_cycles_batched
            for state in self.system.schedule_states
        )
        self.kernel.stats.replay_walk_engaged += sum(
            core.backend.replay_walk_engaged
            for core in self.system.cores
        )

    def run_metrics(self) -> MetricsRegistry:
        """The run's :class:`KernelStats` as labelled ``kernel.*``
        counters (the structured successor of the flat stat bag; every
        field is absorbed automatically)."""
        from repro.kernels import backend_name

        registry = MetricsRegistry()
        labels = {
            "machine": self.system.machine_name,
            "engine": "skip" if self.kernel.cycle_skip else "step",
            "kernel_backend": backend_name(),
        }
        stats = self.kernel.stats
        for field in _dataclass_fields(stats):
            registry.counter("kernel." + field.name, **labels).inc(
                getattr(stats, field.name)
            )
        return registry

    # -- error context -----------------------------------------------------

    def _describe(self) -> str:
        system = self.system
        return (
            f"benchmark {system.traces.benchmark!r}, machine "
            f"{system.machine_name}, config {system.config.label()}"
        )

    def _deadlock_detail(self, now: int) -> str:
        system = self.system
        states = {
            core.core_id: core.context.state.value for core in system.cores
        }
        return (
            f"core states {states}; runtime: "
            f"{system.runtime.describe_blockage()}"
        )


def simulate(
    config: BaseMachineConfig,
    traces: TraceSet,
    max_cycles: int = 500_000_000,
    warm_l2: bool = True,
    cycle_skip: bool = True,
) -> SimulationResult:
    """Build and run one design point over one trace set.

    The machine model is resolved from the configuration's type via the
    model registry (:func:`repro.machine.model.model_for_config`), so
    callers can simulate any registered machine with one entry point.

    Args:
        warm_l2: pre-fill the instruction-side L2s with the code footprint
            (see :meth:`System.warm_instruction_l2s`); on by default
            because the paper's full-length runs operate with code-resident
            L2s.
        cycle_skip: enable the kernel's cycle-skipping fast path
            (bit-identical results; off only for engine cross-checks).
    """
    from repro.machine.model import model_for_config

    model = model_for_config(config)
    system = model.build_system(config, traces)
    if warm_l2:
        system.warm_instruction_l2s()
    return SystemSimulator(system, cycle_skip=cycle_skip).run(
        max_cycles=max_cycles
    )
