"""Machine-model abstraction layer.

Everything machine-neutral that the per-machine packages
(:mod:`repro.acmp`, :mod:`repro.scmp`) build on: the shared
configuration substrate, cache-group topology dataclasses, per-core
ready/wake kernel components, the system assembly base class, the
simulator driver, result records with JSON persistence, and the
:class:`MachineModel` protocol + registry that the campaign and
experiment layers resolve machines through.
"""

from repro.machine.components import (
    CoreCommitComponent,
    CoreFrontendComponent,
    CoreScheduleState,
    GroupInterconnectComponent,
)
from repro.machine.config import BaseMachineConfig
from repro.machine.model import (
    MachineModel,
    get_model,
    model_for_config,
    model_names,
    register_model,
)
from repro.machine.results import CacheGroupResult, CoreResult, SimulationResult
from repro.machine.serialization import (
    load_result,
    load_results,
    result_from_dict,
    result_to_dict,
    save_result,
    save_results,
)
from repro.machine.simulator import SystemSimulator, simulate
from repro.machine.system import Core, System, scale_serial_ipc
from repro.machine.topology import CacheGroup, Topology

__all__ = [
    "BaseMachineConfig",
    "CacheGroup",
    "CacheGroupResult",
    "Core",
    "CoreCommitComponent",
    "CoreFrontendComponent",
    "CoreScheduleState",
    "GroupInterconnectComponent",
    "MachineModel",
    "SimulationResult",
    "CoreResult",
    "System",
    "SystemSimulator",
    "Topology",
    "get_model",
    "load_result",
    "load_results",
    "model_for_config",
    "model_names",
    "register_model",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "save_results",
    "scale_serial_ipc",
    "simulate",
]
