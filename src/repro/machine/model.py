"""The machine-model protocol and registry.

A *machine model* packages everything one simulated machine needs:
its configuration dataclass, standard design-point factories, the
system builder, and the shape of its results. Models register under a
short name (``acmp``, ``scmp``); every layer above — the campaign
runner, the result store, the experiment context and the CLIs — looks
machines up here instead of hard-wiring one, so adding a machine model
is a leaf change (see README "Adding a machine model").

Built-in models are imported lazily to keep ``import repro`` light and
to avoid import cycles (machine packages import :mod:`repro.machine`
themselves).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.config import BaseMachineConfig
    from repro.machine.system import System
    from repro.trace.stream import TraceSet


@runtime_checkable
class MachineModel(Protocol):
    """Everything the stack needs to simulate one machine family.

    Implementations are small singletons (see ``repro.acmp.model`` and
    ``repro.scmp.model``); the contract every new model must meet is
    spelled out in README "Adding a machine model", including the
    equivalence-grid requirement (bit-identical results under the
    scheduled and reference engines, enforced by
    ``tests/test_scheduler_equivalence.py``).
    """

    #: Registry name; also the store/namespace key for cached results.
    name: str
    #: The model's configuration dataclass (frozen).
    config_type: type

    def default_config(self, **overrides) -> BaseMachineConfig:
        """The model's reference design point."""

    def baseline_config(self, **overrides) -> BaseMachineConfig:
        """The private-front-end baseline (no shared I-cache groups)."""

    def shared_config(
        self,
        cores_per_cache: int = 8,
        icache_kb: int = 16,
        bus_count: int = 2,
        line_buffers: int = 4,
        **overrides,
    ) -> BaseMachineConfig:
        """A shared-front-end design point at the given sharing degree."""

    def all_shared_config(
        self, icache_kb: int = 32, bus_count: int = 2, **overrides
    ) -> BaseMachineConfig:
        """The fully-shared design point: every core, the one running
        the master thread included, behind one I-cache. On machines
        whose shared topology already includes core 0 this coincides
        with ``shared_config`` at full sharing degree."""

    def build_system(
        self,
        config: BaseMachineConfig,
        traces: TraceSet,
        *,
        hollow: bool = False,
    ) -> System:
        """Assemble the simulated machine for one (config, traces) pair.

        ``hollow=True`` skips allocating the large dense tables; the
        system is only usable after ``restore_warm_state`` (the sampled
        simulator's measurement machines)."""

    def build_topology(self, config: BaseMachineConfig):
        """Derive the cache-group topology for a bare configuration
        (no traces needed); used by the area/energy models."""

    def config_space(self) -> dict[str, tuple]:
        """The sweepable dimensions and their standard values."""

    def standard_design_points(self) -> list[BaseMachineConfig]:
        """The design points a standing campaign sweeps for this model."""

    def result_schema(self) -> dict:
        """The serialized result shape this model produces."""


#: Modules providing the built-in models, imported on first lookup.
_BUILTIN_MODULES = {
    "acmp": "repro.acmp.model",
    "scmp": "repro.scmp.model",
}

_MODELS: dict[str, MachineModel] = {}


def register_model(model: MachineModel) -> MachineModel:
    """Register a machine model under :attr:`MachineModel.name`.

    Re-registering the same object is a no-op (modules may be imported
    more than once); registering a *different* model under an existing
    name is refused — silently replacing a machine would let cached
    results be reinterpreted by the wrong model.
    """
    existing = _MODELS.get(model.name)
    if existing is not None and existing is not model:
        raise ConfigurationError(
            f"a different machine model is already registered as "
            f"{model.name!r}"
        )
    _MODELS[model.name] = model
    return model


def _load_builtin(name: str) -> None:
    module = _BUILTIN_MODULES.get(name)
    if module is not None and name not in _MODELS:
        __import__(module)  # the module registers its model on import


def get_model(name: str) -> MachineModel:
    """Look a machine model up by registry name."""
    _load_builtin(name)
    try:
        return _MODELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine model {name!r}; expected one of "
            f"{model_names()}"
        ) from None


def model_names() -> list[str]:
    """Every known model name (built-ins included), sorted."""
    return sorted(set(_MODELS) | set(_BUILTIN_MODULES))


def _all_models() -> Iterable[MachineModel]:
    for name in model_names():
        _load_builtin(name)
    return _MODELS.values()


def model_for_config(config: object) -> MachineModel:
    """Resolve the model owning a configuration object by its type.

    This is what lets the layers above stay machine-agnostic: a bare
    config (an :class:`~repro.acmp.config.AcmpConfig`, an
    :class:`~repro.scmp.config.ScmpConfig`, ...) is enough to identify
    the machine it describes.
    """
    for model in _all_models():
        if type(config) is model.config_type:
            return model
    raise ConfigurationError(
        f"no registered machine model owns configuration type "
        f"{type(config).__name__!r}"
    )
