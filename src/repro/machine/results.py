"""Machine-neutral simulation result records and derived metrics.

Every machine model produces the same result shape — per-core counters,
per-cache-group counters and whole-machine totals — tagged with the
model's name so serialized payloads from different machines cannot be
confused. Core 0 always runs the master thread; the ``worker_*``
aggregations therefore mean "every core but the one running the master
thread" on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.backend import STALL_CAUSES


@dataclass
class CoreResult:
    """Per-core outcome of one simulation."""

    core_id: int
    committed: int
    base_cycles: int
    stall_cycles: dict[str, int]
    blocks_fetched: int
    redirects: int
    line_requests: int
    buffer_hits: int
    cache_fetches: int
    branch_lookups: int
    branch_mispredictions: int
    sync_block_cycles: int
    #: iTLB counters; group-shared iTLBs report once, on the first
    #: member core (the same dedupe rule as shared fetch predictors).
    itlb_lookups: int = 0
    itlb_misses: int = 0

    @property
    def access_ratio(self) -> float:
        """Lines fetched from the I-cache / total line requests (Fig. 9)."""
        if self.line_requests == 0:
            return 0.0
        return self.cache_fetches / self.line_requests

    @property
    def branch_mpki(self) -> float:
        if self.committed == 0:
            return 0.0
        return self.branch_mispredictions * 1000.0 / self.committed

    @property
    def total_stalls(self) -> int:
        return sum(self.stall_cycles.values())


@dataclass
class CacheGroupResult:
    """Per-I-cache outcome (one per cache group)."""

    index: int
    core_ids: tuple[int, ...]
    size_bytes: int
    accesses: int
    hits: int
    misses: int
    compulsory_misses: int
    mshr_merges: int
    l2_accesses: int
    l2_misses: int
    bus_transactions: int
    bus_wait_cycles: int
    bus_busy_cycles: int

    @property
    def shared(self) -> bool:
        return len(self.core_ids) > 1

    @property
    def non_compulsory_misses(self) -> int:
        return self.misses - self.compulsory_misses


@dataclass
class SimulationResult:
    """Outcome of one full machine simulation run."""

    benchmark: str
    config_label: str
    cycles: int
    cores: list[CoreResult] = field(default_factory=list)
    cache_groups: list[CacheGroupResult] = field(default_factory=list)
    dram_accesses: int = 0
    lock_hand_offs: int = 0
    #: Registry name of the machine model that produced this result.
    machine: str = "acmp"
    #: Sampled-simulation metadata (``None`` for full detailed runs):
    #: the plan spec, coverage, measured/total instruction counts and
    #: per-metric relative sampling-error estimates. Attached by
    #: :mod:`repro.sampling`; every counter in a sampled result is an
    #: extrapolation whose confidence this payload quantifies.
    sampling: dict | None = None
    #: Serialized :class:`repro.obs.metrics.MetricsRegistry` payload
    #: (``None`` unless recording was enabled for the run): labelled
    #: ``kernel.*`` / ``sampling.*`` / ``phase.*`` metrics. Outside the
    #: bit-identity contract — equivalence comparisons ignore it, since
    #: its labels (engine, backend) and wall timings legitimately differ
    #: between runs that are otherwise identical.
    metrics: list | None = field(default=None, compare=False, repr=False)

    # -- instruction counts -------------------------------------------------

    @property
    def total_committed(self) -> int:
        return sum(core.committed for core in self.cores)

    @property
    def worker_committed(self) -> int:
        return sum(core.committed for core in self.cores[1:])

    # -- I-cache metrics -----------------------------------------------------

    def worker_icache_misses(self) -> int:
        """Total misses of the I-caches serving worker cores."""
        return sum(
            group.misses
            for group in self.cache_groups
            if any(core_id != 0 for core_id in group.core_ids)
        )

    def worker_icache_mpki(self) -> float:
        """Worker-side MPKI (Fig. 11's quantity)."""
        committed = self.worker_committed
        if committed == 0:
            return 0.0
        return self.worker_icache_misses() * 1000.0 / committed

    def worker_access_ratio(self) -> float:
        """Mean worker I-cache access ratio (Fig. 9's quantity)."""
        workers = self.cores[1:]
        requests = sum(core.line_requests for core in workers)
        fetches = sum(core.cache_fetches for core in workers)
        if requests == 0:
            return 0.0
        return fetches / requests

    # -- CPI stack (Fig. 8) ----------------------------------------------------

    def stall_breakdown(self) -> dict[str, int]:
        """Summed stall cycles across worker cores by cause."""
        totals = {cause: 0 for cause in STALL_CAUSES}
        for core in self.cores[1:]:
            for cause, cycles in core.stall_cycles.items():
                totals[cause] = totals.get(cause, 0) + cycles
        return totals

    def cpi_stack(self, include_master: bool = False) -> dict[str, float]:
        """Per-committed-instruction cycle breakdown.

        Components: ``base`` plus each stall cause, expressed as cycles
        per instruction over the selected cores.
        """
        cores = self.cores if include_master else self.cores[1:]
        committed = sum(core.committed for core in cores)
        if committed == 0:
            return {}
        stack = {"base": sum(core.base_cycles for core in cores) / committed}
        for cause in STALL_CAUSES:
            cycles = sum(core.stall_cycles.get(cause, 0) for core in cores)
            stack[cause] = cycles / committed
        return stack

    # -- interconnect -----------------------------------------------------------

    def total_bus_wait_cycles(self) -> int:
        return sum(group.bus_wait_cycles for group in self.cache_groups)

    def shared_cache_accesses(self) -> int:
        return sum(
            group.accesses for group in self.cache_groups if group.shared
        )
