"""JSON persistence for simulation results, across machine models.

Experiment campaigns (hundreds of design-point runs) need durable,
diff-able outputs; this module round-trips :class:`SimulationResult`
through plain JSON so sweeps can be resumed, archived and compared
without re-simulating. Payloads carry the producing machine model's
registry name; a loader expecting one model refuses another model's
payload instead of silently mixing machines. Payloads written before
the machine axis existed (no ``machine`` field) are read as ``acmp``,
the only model that existed then.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SimulationError
from repro.machine.results import CacheGroupResult, CoreResult, SimulationResult

_FORMAT_VERSION = 1

#: Machine name assumed for payloads written before the machine axis.
_LEGACY_MACHINE = "acmp"


def result_to_dict(result: SimulationResult) -> dict:
    """Convert a result to JSON-serialisable primitives.

    The ``sampling`` key is present only on sampled (extrapolated)
    results, so full-run payloads are byte-identical to pre-sampling
    ones and a sampled payload is recognisable at a glance.
    """
    payload = {
        "version": _FORMAT_VERSION,
        "machine": result.machine,
        "benchmark": result.benchmark,
        "config_label": result.config_label,
        "cycles": result.cycles,
        "dram_accesses": result.dram_accesses,
        "lock_hand_offs": result.lock_hand_offs,
        "cores": [
            {
                "core_id": core.core_id,
                "committed": core.committed,
                "base_cycles": core.base_cycles,
                "stall_cycles": dict(core.stall_cycles),
                "blocks_fetched": core.blocks_fetched,
                "redirects": core.redirects,
                "line_requests": core.line_requests,
                "buffer_hits": core.buffer_hits,
                "cache_fetches": core.cache_fetches,
                "branch_lookups": core.branch_lookups,
                "branch_mispredictions": core.branch_mispredictions,
                "sync_block_cycles": core.sync_block_cycles,
                "itlb_lookups": core.itlb_lookups,
                "itlb_misses": core.itlb_misses,
            }
            for core in result.cores
        ],
        "cache_groups": [
            {
                "index": group.index,
                "core_ids": list(group.core_ids),
                "size_bytes": group.size_bytes,
                "accesses": group.accesses,
                "hits": group.hits,
                "misses": group.misses,
                "compulsory_misses": group.compulsory_misses,
                "mshr_merges": group.mshr_merges,
                "l2_accesses": group.l2_accesses,
                "l2_misses": group.l2_misses,
                "bus_transactions": group.bus_transactions,
                "bus_wait_cycles": group.bus_wait_cycles,
                "bus_busy_cycles": group.bus_busy_cycles,
            }
            for group in result.cache_groups
        ],
    }
    if result.sampling is not None:
        payload["sampling"] = result.sampling
    # ``result.metrics`` is deliberately NOT part of this payload: the
    # dict is the bit-identity contract (engine cross-checks and
    # serial/parallel comparisons assert equality on it), and recorded
    # metrics legitimately differ across engines and wall clocks. The
    # result store persists them as a sibling of the result payload.
    return payload


def result_from_dict(data: dict, expect_machine: str | None = None) -> SimulationResult:
    """Rebuild a result from :func:`result_to_dict` output.

    Args:
        expect_machine: when given, the payload must have been produced
            by this machine model; a payload from any other model is
            rejected with a :class:`SimulationError` instead of being
            silently reinterpreted.
    """
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise SimulationError(
            f"unsupported result format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    machine = data.get("machine", _LEGACY_MACHINE)
    if expect_machine is not None and machine != expect_machine:
        raise SimulationError(
            f"result payload was produced by machine model {machine!r}, "
            f"not the expected {expect_machine!r}; results do not "
            f"transfer between machine models"
        )
    try:
        result = SimulationResult(
            benchmark=data["benchmark"],
            config_label=data["config_label"],
            cycles=data["cycles"],
            dram_accesses=data.get("dram_accesses", 0),
            lock_hand_offs=data.get("lock_hand_offs", 0),
            machine=machine,
            sampling=data.get("sampling"),
        )
        for core_data in data["cores"]:
            core_data = dict(core_data)
            # Fields added after format v1 payloads were first written.
            core_data.setdefault("itlb_lookups", 0)
            core_data.setdefault("itlb_misses", 0)
            result.cores.append(CoreResult(**core_data))
        for group_data in data["cache_groups"]:
            group_data = dict(group_data)
            group_data["core_ids"] = tuple(group_data["core_ids"])
            result.cache_groups.append(CacheGroupResult(**group_data))
    except (KeyError, TypeError) as exc:
        raise SimulationError(f"malformed result payload: {exc}") from exc
    return result


def save_result(result: SimulationResult, path: str | Path) -> None:
    """Write one result as pretty-printed JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def load_result(
    path: str | Path, expect_machine: str | None = None
) -> SimulationResult:
    """Read a result written by :func:`save_result`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SimulationError(f"{path} is not valid JSON: {exc}") from exc
    return result_from_dict(data, expect_machine=expect_machine)


def save_results(results: list[SimulationResult], path: str | Path) -> None:
    """Write a whole campaign (list of results) as one JSON file."""
    payload = {
        "version": _FORMAT_VERSION,
        "results": [result_to_dict(result) for result in results],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_results(path: str | Path) -> list[SimulationResult]:
    """Read a campaign written by :func:`save_results`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SimulationError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "results" not in data:
        raise SimulationError(f"{path} is not a result campaign file")
    return [result_from_dict(entry) for entry in data["results"]]
