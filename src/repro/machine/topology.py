"""Machine-neutral sharing topology: which cores share which I-cache.

A machine model's configuration derives a :class:`Topology` — a
partition of the cores into :class:`CacheGroup`\\ s, each group sharing
one I-cache (behind one I-interconnect when the group has more than one
member). The dataclasses here are model-agnostic; each machine package
owns its ``build_topology`` rule (master private + worker groups for
the ACMP, a uniform partition for the symmetric CMP).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CacheGroup:
    """One I-cache and the cores attached to it."""

    index: int
    core_ids: tuple[int, ...]
    size_bytes: int

    @property
    def shared(self) -> bool:
        return len(self.core_ids) > 1


@dataclass(frozen=True, slots=True)
class Topology:
    """The full I-cache organisation of one design point."""

    groups: tuple[CacheGroup, ...]
    core_count: int

    def group_of(self, core_id: int) -> CacheGroup:
        for group in self.groups:
            if core_id in group.core_ids:
                return group
        raise KeyError(f"core {core_id} belongs to no cache group")

    @property
    def shared_groups(self) -> tuple[CacheGroup, ...]:
        return tuple(group for group in self.groups if group.shared)

    @property
    def icache_count(self) -> int:
        return len(self.groups)
