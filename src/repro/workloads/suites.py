"""The 24 HPC benchmarks of the paper, as calibrated workload models.

Suites (Section V-C): all ten NAS Parallel Benchmarks (input C), ten
SPEC OMP 2012 benchmarks (reference inputs; the remaining three duplicate
NPB codes and are excluded, as in the paper), and the four ExMatEx proxy
applications.

Parameter values are calibrated against the paper's own characterisation:

* ``bb_bytes_*`` follow Fig. 2 (parallel basic blocks ~3x serial on
  average; *nab* and *CoEVP* inverted).
* ``cold_mpki_*`` follow Fig. 3 (serial MPKI up to ~60; parallel MPKI
  ~0 everywhere except CoEVP's 1.27).
* ``sharing_*`` follow Fig. 4 (~99 % dynamic sharing).
* ``serial_fraction`` follows Fig. 13's x-axis placement (CoMD ~17 %,
  LULESH ~12 %, nab ~10 %, most others < 3 %).
* loop geometry (body bytes / trips / footprints) reproduces the Fig. 9
  I-cache access-ratio split: tight-loop codes (CG, IS, botsalgn,
  botsspar, CoSP) are captured by a few line buffers, large-body codes
  (BT, LU, ilbdc, LULESH) defeat the loop buffer entirely, and UA sits at
  the boundary where going from 4 to 8 line buffers matters (Fig. 10).
* ``ipc_*`` stand in for the paper's i7/Cortex-A9 counter measurements;
  the most bus-sensitive codes of Fig. 7 (UA, EP, FT) carry the highest
  worker IPC demand.
* *botsalgn* and *smithwa* carry parallel footprints between 16 KB and
  32 KB, producing the capacity pressure the paper reports for the 16 KB
  shared configuration (Fig. 11).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.model import WorkloadModel

KB = 1024


def _model(
    name: str,
    suite: str,
    *,
    serial_pct: float,
    bb_serial: float,
    bb_parallel: float,
    body_serial: float,
    body_parallel: float,
    trips_serial: int,
    trips_parallel: int,
    footprint_serial_kb: float,
    footprint_parallel_kb: float,
    cold_serial: float,
    cold_parallel: float,
    branch_serial: float,
    branch_parallel: float,
    sharing_dynamic: float,
    sharing_static: float,
    ipc_master_serial: float,
    ipc_master_parallel: float,
    ipc_worker: float,
    phases: int = 3,
    critical_sections: bool = False,
    imbalance: float = 0.02,
    parallel_instructions: int = 40_000,
) -> WorkloadModel:
    return WorkloadModel(
        name=name,
        suite=suite,
        serial_fraction=serial_pct / 100.0,
        bb_bytes_serial=bb_serial,
        bb_bytes_parallel=bb_parallel,
        loop_body_bytes_serial=body_serial,
        loop_body_bytes_parallel=body_parallel,
        inner_trips_serial=trips_serial,
        inner_trips_parallel=trips_parallel,
        footprint_serial_bytes=int(footprint_serial_kb * KB),
        footprint_parallel_bytes=int(footprint_parallel_kb * KB),
        cold_mpki_serial=cold_serial,
        cold_mpki_parallel=cold_parallel,
        branch_mpki_serial=branch_serial,
        branch_mpki_parallel=branch_parallel,
        sharing_dynamic=sharing_dynamic,
        sharing_static=sharing_static,
        ipc_master_serial=ipc_master_serial,
        ipc_master_parallel=ipc_master_parallel,
        ipc_worker_parallel=ipc_worker,
        parallel_phases=phases,
        uses_critical_sections=critical_sections,
        imbalance=imbalance,
        parallel_instructions=parallel_instructions,
    )


#: NAS Parallel Benchmarks, input set C.
NPB_SUITE: tuple[WorkloadModel, ...] = (
    _model(
        "BT", "NPB", serial_pct=1.0, bb_serial=30, bb_parallel=330,
        body_serial=512, body_parallel=3072, trips_serial=20, trips_parallel=12,
        footprint_serial_kb=4, footprint_parallel_kb=12,
        cold_serial=18, cold_parallel=0.0, branch_serial=5.0, branch_parallel=1.2,
        sharing_dynamic=0.99, sharing_static=0.97,
        ipc_master_serial=1.8, ipc_master_parallel=2.2, ipc_worker=0.60, phases=2,
    ),
    _model(
        "CG", "NPB", serial_pct=1.5, bb_serial=25, bb_parallel=45,
        body_serial=96, body_parallel=96, trips_serial=40, trips_parallel=80,
        footprint_serial_kb=3, footprint_parallel_kb=3,
        cold_serial=14, cold_parallel=0.0, branch_serial=4.0, branch_parallel=1.0,
        sharing_dynamic=0.995, sharing_static=0.97,
        ipc_master_serial=1.6, ipc_master_parallel=2.0, ipc_worker=0.50,
    ),
    _model(
        "DC", "NPB", serial_pct=3.0, bb_serial=35, bb_parallel=60,
        body_serial=256, body_parallel=320, trips_serial=15, trips_parallel=10,
        footprint_serial_kb=6, footprint_parallel_kb=8,
        cold_serial=45, cold_parallel=0.01, branch_serial=8.0, branch_parallel=2.5,
        sharing_dynamic=0.98, sharing_static=0.95,
        ipc_master_serial=1.4, ipc_master_parallel=1.7, ipc_worker=0.60, phases=2,
    ),
    _model(
        "EP", "NPB", serial_pct=0.5, bb_serial=30, bb_parallel=90,
        body_serial=192, body_parallel=448, trips_serial=25, trips_parallel=40,
        footprint_serial_kb=2, footprint_parallel_kb=4,
        cold_serial=8, cold_parallel=0.0, branch_serial=3.0, branch_parallel=0.8,
        sharing_dynamic=0.999, sharing_static=0.99,
        ipc_master_serial=2.0, ipc_master_parallel=2.4, ipc_worker=1.10,
    ),
    _model(
        "FT", "NPB", serial_pct=1.2, bb_serial=30, bb_parallel=120,
        body_serial=320, body_parallel=640, trips_serial=18, trips_parallel=25,
        footprint_serial_kb=4, footprint_parallel_kb=8,
        cold_serial=22, cold_parallel=0.0, branch_serial=5.0, branch_parallel=1.5,
        sharing_dynamic=0.99, sharing_static=0.97,
        ipc_master_serial=1.9, ipc_master_parallel=2.3, ipc_worker=1.05,
    ),
    _model(
        "IS", "NPB", serial_pct=2.0, bb_serial=20, bb_parallel=40,
        body_serial=80, body_parallel=80, trips_serial=30, trips_parallel=60,
        footprint_serial_kb=2, footprint_parallel_kb=3,
        cold_serial=28, cold_parallel=0.0, branch_serial=6.0, branch_parallel=1.8,
        sharing_dynamic=0.995, sharing_static=0.98,
        ipc_master_serial=1.5, ipc_master_parallel=1.9, ipc_worker=0.55,
    ),
    _model(
        "LU", "NPB", serial_pct=0.8, bb_serial=30, bb_parallel=310,
        body_serial=512, body_parallel=2560, trips_serial=22, trips_parallel=15,
        footprint_serial_kb=4, footprint_parallel_kb=10,
        cold_serial=16, cold_parallel=0.0, branch_serial=4.0, branch_parallel=1.0,
        sharing_dynamic=0.99, sharing_static=0.97,
        ipc_master_serial=1.8, ipc_master_parallel=2.2, ipc_worker=0.70, phases=2,
    ),
    _model(
        "MG", "NPB", serial_pct=1.5, bb_serial=35, bb_parallel=150,
        body_serial=384, body_parallel=768, trips_serial=20, trips_parallel=20,
        footprint_serial_kb=4, footprint_parallel_kb=10,
        cold_serial=20, cold_parallel=0.0, branch_serial=5.0, branch_parallel=1.4,
        sharing_dynamic=0.99, sharing_static=0.96,
        ipc_master_serial=1.7, ipc_master_parallel=2.1, ipc_worker=0.80,
    ),
    _model(
        "SP", "NPB", serial_pct=0.7, bb_serial=30, bb_parallel=260,
        body_serial=448, body_parallel=2048, trips_serial=20, trips_parallel=18,
        footprint_serial_kb=4, footprint_parallel_kb=10,
        cold_serial=18, cold_parallel=0.0, branch_serial=4.0, branch_parallel=1.1,
        sharing_dynamic=0.995, sharing_static=0.98,
        ipc_master_serial=1.8, ipc_master_parallel=2.2, ipc_worker=0.90, phases=2,
    ),
    _model(
        "UA", "NPB", serial_pct=1.0, bb_serial=30, bb_parallel=140,
        body_serial=384, body_parallel=448, trips_serial=20, trips_parallel=30,
        footprint_serial_kb=4, footprint_parallel_kb=10,
        cold_serial=24, cold_parallel=0.0, branch_serial=6.0, branch_parallel=1.6,
        sharing_dynamic=0.99, sharing_static=0.96,
        ipc_master_serial=1.9, ipc_master_parallel=2.3, ipc_worker=1.30,
    ),
)

#: SPEC OMP 2012 benchmarks with reference inputs (the three NPB
#: duplicates omitted, as in the paper).
SPECOMP_SUITE: tuple[WorkloadModel, ...] = (
    _model(
        "md", "SPECOMP", serial_pct=0.5, bb_serial=25, bb_parallel=200,
        body_serial=320, body_parallel=1024, trips_serial=18, trips_parallel=30,
        footprint_serial_kb=3, footprint_parallel_kb=8,
        cold_serial=11, cold_parallel=0.0, branch_serial=3.0, branch_parallel=0.9,
        sharing_dynamic=0.995, sharing_static=0.98,
        ipc_master_serial=1.7, ipc_master_parallel=2.1, ipc_worker=0.80,
    ),
    _model(
        "bwaves", "SPECOMP", serial_pct=2.0, bb_serial=40, bb_parallel=180,
        body_serial=448, body_parallel=1024, trips_serial=16, trips_parallel=22,
        footprint_serial_kb=5, footprint_parallel_kb=10,
        cold_serial=14, cold_parallel=0.0, branch_serial=4.0, branch_parallel=1.2,
        sharing_dynamic=0.99, sharing_static=0.97,
        ipc_master_serial=1.6, ipc_master_parallel=2.0, ipc_worker=0.75,
    ),
    _model(
        "nab", "SPECOMP", serial_pct=10.0, bb_serial=90, bb_parallel=60,
        body_serial=512, body_parallel=256, trips_serial=25, trips_parallel=35,
        footprint_serial_kb=6, footprint_parallel_kb=8,
        cold_serial=7, cold_parallel=0.0, branch_serial=3.0, branch_parallel=1.3,
        sharing_dynamic=0.99, sharing_static=0.96,
        ipc_master_serial=1.9, ipc_master_parallel=2.0, ipc_worker=0.70,
    ),
    _model(
        "botsspar", "SPECOMP", serial_pct=2.0, bb_serial=30, bb_parallel=70,
        body_serial=128, body_parallel=128, trips_serial=25, trips_parallel=40,
        footprint_serial_kb=3, footprint_parallel_kb=6,
        cold_serial=32, cold_parallel=0.0, branch_serial=7.0, branch_parallel=2.0,
        sharing_dynamic=0.98, sharing_static=0.94,
        ipc_master_serial=1.6, ipc_master_parallel=1.9, ipc_worker=0.65,
        critical_sections=True, imbalance=0.15,
    ),
    _model(
        "botsalgn", "SPECOMP", serial_pct=3.0, bb_serial=25, bb_parallel=50,
        body_serial=96, body_parallel=128, trips_serial=25, trips_parallel=10,
        footprint_serial_kb=3, footprint_parallel_kb=22,
        cold_serial=28, cold_parallel=0.0, branch_serial=6.0, branch_parallel=1.7,
        sharing_dynamic=0.98, sharing_static=0.94,
        ipc_master_serial=1.5, ipc_master_parallel=1.9, ipc_worker=0.60,
        critical_sections=True, imbalance=0.15, parallel_instructions=100_000,
    ),
    _model(
        "ilbdc", "SPECOMP", serial_pct=1.0, bb_serial=35, bb_parallel=340,
        body_serial=512, body_parallel=3584, trips_serial=18, trips_parallel=14,
        footprint_serial_kb=4, footprint_parallel_kb=11,
        cold_serial=9, cold_parallel=0.0, branch_serial=3.0, branch_parallel=0.8,
        sharing_dynamic=0.995, sharing_static=0.98,
        ipc_master_serial=1.8, ipc_master_parallel=2.2, ipc_worker=0.85, phases=2,
    ),
    _model(
        "fma3d", "SPECOMP", serial_pct=7.0, bb_serial=40, bb_parallel=130,
        body_serial=512, body_parallel=768, trips_serial=15, trips_parallel=18,
        footprint_serial_kb=8, footprint_parallel_kb=14,
        cold_serial=40, cold_parallel=0.005, branch_serial=8.0, branch_parallel=2.1,
        sharing_dynamic=0.98, sharing_static=0.95,
        ipc_master_serial=1.7, ipc_master_parallel=2.0, ipc_worker=0.75,
    ),
    _model(
        "imagick", "SPECOMP", serial_pct=4.0, bb_serial=30, bb_parallel=100,
        body_serial=384, body_parallel=512, trips_serial=15, trips_parallel=20,
        footprint_serial_kb=6, footprint_parallel_kb=10,
        cold_serial=55, cold_parallel=0.005, branch_serial=7.0, branch_parallel=1.9,
        sharing_dynamic=0.99, sharing_static=0.96,
        ipc_master_serial=1.8, ipc_master_parallel=2.1, ipc_worker=0.90,
    ),
    _model(
        "smithwa", "SPECOMP", serial_pct=5.0, bb_serial=25, bb_parallel=80,
        body_serial=192, body_parallel=256, trips_serial=20, trips_parallel=25,
        footprint_serial_kb=4, footprint_parallel_kb=20,
        cold_serial=20, cold_parallel=0.0, branch_serial=5.0, branch_parallel=1.5,
        sharing_dynamic=0.99, sharing_static=0.96,
        ipc_master_serial=1.6, ipc_master_parallel=2.0, ipc_worker=0.70,
        parallel_instructions=100_000,
    ),
    _model(
        "kdtree", "SPECOMP", serial_pct=2.0, bb_serial=20, bb_parallel=50,
        body_serial=96, body_parallel=128, trips_serial=25, trips_parallel=45,
        footprint_serial_kb=3, footprint_parallel_kb=6,
        cold_serial=24, cold_parallel=0.0, branch_serial=6.0, branch_parallel=1.8,
        sharing_dynamic=0.99, sharing_static=0.96,
        ipc_master_serial=1.5, ipc_master_parallel=1.9, ipc_worker=0.60,
    ),
)

#: ExMatEx proxy applications, default input parameters.
EXMATEX_SUITE: tuple[WorkloadModel, ...] = (
    _model(
        "CoEVP", "ExMatEx", serial_pct=8.0, bb_serial=120, bb_parallel=70,
        body_serial=768, body_parallel=320, trips_serial=18, trips_parallel=22,
        footprint_serial_kb=8, footprint_parallel_kb=14,
        cold_serial=60, cold_parallel=1.27, branch_serial=9.0, branch_parallel=2.4,
        sharing_dynamic=0.98, sharing_static=0.95,
        ipc_master_serial=1.8, ipc_master_parallel=2.1, ipc_worker=0.70, phases=4,
    ),
    _model(
        "CoMD", "ExMatEx", serial_pct=17.0, bb_serial=35, bb_parallel=110,
        body_serial=192, body_parallel=640, trips_serial=60, trips_parallel=25,
        footprint_serial_kb=2, footprint_parallel_kb=9,
        cold_serial=5, cold_parallel=0.0, branch_serial=4.0, branch_parallel=1.1,
        sharing_dynamic=0.99, sharing_static=0.97,
        ipc_master_serial=1.9, ipc_master_parallel=2.2, ipc_worker=0.80,
    ),
    _model(
        "CoSP", "ExMatEx", serial_pct=3.0, bb_serial=25, bb_parallel=55,
        body_serial=112, body_parallel=112, trips_serial=30, trips_parallel=50,
        footprint_serial_kb=3, footprint_parallel_kb=5,
        cold_serial=30, cold_parallel=0.0, branch_serial=6.0, branch_parallel=1.7,
        sharing_dynamic=0.99, sharing_static=0.96,
        ipc_master_serial=1.6, ipc_master_parallel=1.9, ipc_worker=0.60,
    ),
    _model(
        "LULESH", "ExMatEx", serial_pct=12.0, bb_serial=40, bb_parallel=300,
        body_serial=512, body_parallel=2816, trips_serial=18, trips_parallel=16,
        footprint_serial_kb=5, footprint_parallel_kb=12,
        cold_serial=12, cold_parallel=0.0, branch_serial=4.0, branch_parallel=1.2,
        sharing_dynamic=0.99, sharing_static=0.97,
        ipc_master_serial=1.9, ipc_master_parallel=2.3, ipc_worker=0.90, phases=2,
    ),
)

#: All 24 benchmarks in the paper's figure order.
ALL_BENCHMARKS: tuple[WorkloadModel, ...] = NPB_SUITE + SPECOMP_SUITE + EXMATEX_SUITE

_BY_NAME = {model.name: model for model in ALL_BENCHMARKS}


def benchmark_names() -> list[str]:
    """Names of all 24 benchmarks in figure order."""
    return [model.name for model in ALL_BENCHMARKS]


def get_benchmark(name: str) -> WorkloadModel:
    """Look up a benchmark model by its paper name.

    Raises:
        WorkloadError: for unknown names, listing the valid ones.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; expected one of {benchmark_names()}"
        ) from None


def suite_of(name: str) -> str:
    """Return the suite a benchmark belongs to."""
    return get_benchmark(name).suite
