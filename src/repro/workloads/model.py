"""Workload models: the statistical description of one HPC benchmark.

The paper traces 24 real OpenMP benchmarks with Pin and measures per-section
IPC with performance counters on real machines. Neither the binaries, the
reference inputs, nor the machines are available here, so each benchmark is
replaced by a :class:`WorkloadModel` — a compact statistical description of
its instruction stream calibrated against the characterisation data the
paper itself publishes (Figures 2, 3, 4 and 13):

* mean dynamic basic-block length in serial and parallel code (Fig. 2),
* steady-state I-cache MPKI in serial and parallel code (Fig. 3),
* dynamic/static instruction sharing across threads (Fig. 4),
* serial code fraction (Fig. 13),
* per-section IPC of the master (i7-class) and worker (Cortex-A9-class)
  cores (Table I methodology),
* loop-nest geometry (body size, trip counts, code footprint) which governs
  line-buffer effectiveness (Fig. 9) and capacity behaviour (Fig. 11).

The synthesiser (:mod:`repro.trace.synthesis`) turns a model into per-thread
traces that exercise exactly the simulator paths real traces would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.trace.records import INSTRUCTION_BYTES


@dataclass(frozen=True, slots=True)
class WorkloadModel:
    """Statistical model of one benchmark's instruction stream.

    Sizes are bytes unless noted. ``*_serial`` fields describe code outside
    parallel regions (executed only by the master thread); ``*_parallel``
    fields describe parallel-region code (executed by every thread).
    """

    #: Benchmark name as used in the paper's figures (e.g. ``"BT"``).
    name: str
    #: Suite the benchmark belongs to: ``"NPB"``, ``"SPECOMP"`` or ``"ExMatEx"``.
    suite: str

    #: Fraction of total dynamic instructions executed in serial regions.
    serial_fraction: float

    #: Mean dynamic basic-block length (bytes), Fig. 2.
    bb_bytes_serial: float
    bb_bytes_parallel: float

    #: Mean loop-body size (bytes). Bodies larger than the line-buffer set
    #: defeat the loop buffer and drive the I-cache access ratio towards
    #: 100 % (Fig. 9); small bodies with high trip counts are captured.
    loop_body_bytes_serial: float
    loop_body_bytes_parallel: float

    #: Mean iterations of each inner loop before moving to the next.
    inner_trips_serial: int
    inner_trips_parallel: int

    #: Static code footprint (bytes) of each region kind. Parallel
    #: footprints above the shared-cache capacity create capacity misses
    #: when the shared I-cache shrinks to 16 KB (Fig. 11).
    footprint_serial_bytes: int
    footprint_parallel_bytes: int

    #: Steady-state fresh-line touch rate (cache lines per kilo-instruction).
    #: This is the scale-invariant component of the I-cache MPKI: it models
    #: code whose reuse distance exceeds any L1 capacity (Fig. 3).
    cold_mpki_serial: float
    cold_mpki_parallel: float

    #: Steady-state branch mispredictions per kilo-instruction for a
    #: gshare-class predictor. The paper reports 3.8x higher values in
    #: serial code on average (Section VI-A).
    branch_mpki_serial: float
    branch_mpki_parallel: float

    #: Fraction of dynamic instructions (parallel regions) fetched from
    #: code shared by all threads (Fig. 4, ~0.99 on average).
    sharing_dynamic: float
    #: Fraction of the static parallel footprint shared by all threads.
    sharing_static: float

    #: Per-section IPC values, the paper's step-2 counter measurements.
    ipc_master_serial: float
    ipc_master_parallel: float
    ipc_worker_parallel: float

    #: Number of parallel regions (OpenMP parallel constructs) to emit.
    parallel_phases: int

    #: Whether the benchmark uses critical sections / locks (the OpenMP
    #: task-parallel codes: botsspar, botsalgn).
    uses_critical_sections: bool

    #: Relative per-thread trip-count imbalance inside parallel loops
    #: (0 = perfectly balanced).
    imbalance: float

    #: Default dynamic parallel instructions per thread at scale = 1.0.
    parallel_instructions: int

    def __post_init__(self) -> None:
        checks: list[tuple[bool, str]] = [
            (bool(self.name), "name must be non-empty"),
            (self.suite in {"NPB", "SPECOMP", "ExMatEx"}, f"unknown suite {self.suite!r}"),
            (0.0 <= self.serial_fraction < 1.0, "serial_fraction must be in [0, 1)"),
            (self.bb_bytes_serial >= INSTRUCTION_BYTES, "bb_bytes_serial too small"),
            (self.bb_bytes_parallel >= INSTRUCTION_BYTES, "bb_bytes_parallel too small"),
            (
                self.loop_body_bytes_serial >= self.bb_bytes_serial,
                "serial loop body smaller than one basic block",
            ),
            (
                self.loop_body_bytes_parallel >= self.bb_bytes_parallel,
                "parallel loop body smaller than one basic block",
            ),
            (self.inner_trips_serial >= 1, "inner_trips_serial must be >= 1"),
            (self.inner_trips_parallel >= 1, "inner_trips_parallel must be >= 1"),
            (
                self.footprint_serial_bytes >= self.loop_body_bytes_serial,
                "serial footprint smaller than one loop body",
            ),
            (
                self.footprint_parallel_bytes >= self.loop_body_bytes_parallel,
                "parallel footprint smaller than one loop body",
            ),
            (self.cold_mpki_serial >= 0, "cold_mpki_serial must be >= 0"),
            (self.cold_mpki_parallel >= 0, "cold_mpki_parallel must be >= 0"),
            (self.branch_mpki_serial >= 0, "branch_mpki_serial must be >= 0"),
            (self.branch_mpki_parallel >= 0, "branch_mpki_parallel must be >= 0"),
            (0.0 < self.sharing_dynamic <= 1.0, "sharing_dynamic must be in (0, 1]"),
            (0.0 < self.sharing_static <= 1.0, "sharing_static must be in (0, 1]"),
            (self.ipc_master_serial > 0, "ipc_master_serial must be positive"),
            (self.ipc_master_parallel > 0, "ipc_master_parallel must be positive"),
            (self.ipc_worker_parallel > 0, "ipc_worker_parallel must be positive"),
            (self.parallel_phases >= 1, "parallel_phases must be >= 1"),
            (0.0 <= self.imbalance <= 0.5, "imbalance must be in [0, 0.5]"),
            (self.parallel_instructions >= 1000, "parallel_instructions too small"),
        ]
        for condition, message in checks:
            if not condition:
                raise WorkloadError(f"workload {self.name!r}: {message}")

    @property
    def bb_instructions_serial(self) -> int:
        """Mean serial basic-block length in instructions (>= 1)."""
        return max(1, round(self.bb_bytes_serial / INSTRUCTION_BYTES))

    @property
    def bb_instructions_parallel(self) -> int:
        """Mean parallel basic-block length in instructions (>= 1)."""
        return max(1, round(self.bb_bytes_parallel / INSTRUCTION_BYTES))

    def serial_instructions(self, thread_count: int, scale: float = 1.0) -> int:
        """Total serial instructions for the master thread.

        Chosen so that serial instructions make up :attr:`serial_fraction`
        of all dynamic instructions when ``thread_count`` threads each run
        ``parallel_instructions * scale`` parallel instructions.
        """
        parallel_total = self.parallel_instructions * scale * thread_count
        fraction = self.serial_fraction
        return int(parallel_total * fraction / (1.0 - fraction))

    def scaled_parallel_instructions(self, scale: float = 1.0) -> int:
        """Per-thread parallel instruction budget at the given scale."""
        return max(1000, int(self.parallel_instructions * scale))
