"""Workload models for the paper's 24 HPC benchmarks and code synthesis."""

from repro.workloads.codegen import (
    CodeRegion,
    Loop,
    StaticBlock,
    build_region,
    stable_seed,
)
from repro.workloads.model import WorkloadModel
from repro.workloads.suites import (
    ALL_BENCHMARKS,
    EXMATEX_SUITE,
    NPB_SUITE,
    SPECOMP_SUITE,
    benchmark_names,
    get_benchmark,
    suite_of,
)

__all__ = [
    "CodeRegion",
    "Loop",
    "StaticBlock",
    "build_region",
    "stable_seed",
    "WorkloadModel",
    "ALL_BENCHMARKS",
    "EXMATEX_SUITE",
    "NPB_SUITE",
    "SPECOMP_SUITE",
    "benchmark_names",
    "get_benchmark",
    "suite_of",
]
