"""Static code layout generation.

Turns the geometric parameters of a :class:`~repro.workloads.model.WorkloadModel`
(basic-block size, loop-body size, code footprint) into a concrete layout of
loops, blocks and addresses that the trace synthesiser walks dynamically.

The layout is the synthetic stand-in for the text segment of a compiled HPC
binary: a sequence of inner loops packed contiguously in the address space,
each loop consisting of one or more basic blocks ending in conditional
branches, with the final block carrying the loop back-edge.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from random import Random

from repro.errors import WorkloadError
from repro.trace.records import INSTRUCTION_BYTES


def stable_seed(*parts: str | int) -> int:
    """Deterministic 64-bit seed from arbitrary labelled parts.

    ``hash()`` is salted per interpreter run, so layouts and traces would
    not be reproducible across processes; a digest keeps every experiment
    bit-identical between runs.
    """
    digest = hashlib.sha256("\x1f".join(str(part) for part in parts).encode())
    return int.from_bytes(digest.digest()[:8], "little")


@dataclass(frozen=True, slots=True)
class StaticBlock:
    """One static basic block: a run of instructions at a fixed address."""

    address: int
    instruction_count: int

    @property
    def size_bytes(self) -> int:
        return self.instruction_count * INSTRUCTION_BYTES

    @property
    def end_address(self) -> int:
        return self.address + self.size_bytes


@dataclass(frozen=True, slots=True)
class Loop:
    """An inner loop: a body of blocks plus its nominal trip count."""

    blocks: tuple[StaticBlock, ...]
    trips: int

    @property
    def head_address(self) -> int:
        return self.blocks[0].address

    @property
    def end_address(self) -> int:
        return self.blocks[-1].end_address

    @property
    def body_instructions(self) -> int:
        return sum(block.instruction_count for block in self.blocks)

    @property
    def body_bytes(self) -> int:
        return self.body_instructions * INSTRUCTION_BYTES


@dataclass(frozen=True, slots=True)
class CodeRegion:
    """A contiguous stretch of loops, e.g. the parallel code of a benchmark."""

    base_address: int
    loops: tuple[Loop, ...]

    @property
    def footprint_bytes(self) -> int:
        return sum(loop.body_bytes for loop in self.loops)

    @property
    def end_address(self) -> int:
        return self.loops[-1].end_address if self.loops else self.base_address

    def line_addresses(self, line_bytes: int = 64) -> set[int]:
        """Set of cache-line addresses covered by the region's code."""
        lines: set[int] = set()
        for loop in self.loops:
            for block in loop.blocks:
                first = block.address // line_bytes
                last = (block.end_address - 1) // line_bytes
                lines.update(range(first, last + 1))
        return {line * line_bytes for line in lines}


def build_region(
    base_address: int,
    footprint_bytes: int,
    body_bytes: float,
    bb_bytes: float,
    trips: int,
    rng: Random,
) -> CodeRegion:
    """Pack loops into a region until the footprint is covered.

    Block sizes are jittered +/-40 % around ``bb_bytes`` and body sizes
    +/-25 % around ``body_bytes`` so the layout is irregular in the way
    compiled code is, while preserving the requested means.

    Raises:
        WorkloadError: on non-positive sizes or inconsistent parameters.
    """
    if footprint_bytes < body_bytes:
        raise WorkloadError(
            f"footprint {footprint_bytes} smaller than one loop body {body_bytes}"
        )
    if bb_bytes < INSTRUCTION_BYTES:
        raise WorkloadError(f"basic block of {bb_bytes} bytes is below one instruction")
    if trips < 1:
        raise WorkloadError(f"trip count must be >= 1, got {trips}")

    loops: list[Loop] = []
    cursor = base_address
    emitted = 0
    while emitted < footprint_bytes:
        target_body = body_bytes * rng.uniform(0.75, 1.25)
        blocks: list[StaticBlock] = []
        body_emitted = 0
        while body_emitted < target_body:
            block_bytes = bb_bytes * rng.uniform(0.6, 1.4)
            count = max(1, round(block_bytes / INSTRUCTION_BYTES))
            block = StaticBlock(address=cursor, instruction_count=count)
            blocks.append(block)
            cursor = block.end_address
            body_emitted += block.size_bytes
        loop_trips = max(1, round(trips * rng.uniform(0.8, 1.2)))
        loops.append(Loop(blocks=tuple(blocks), trips=loop_trips))
        emitted += body_emitted
    return CodeRegion(base_address=base_address, loops=tuple(loops))
