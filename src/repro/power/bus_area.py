"""Wire-level interconnect area and power model (Section VI-D).

The paper's methodology: "The area occupied by a bus is determined by the
number of wires, the wire pitch and length. ... bus width is the same as
the I-cache line width, which determines the number of wires plus address
lines. ... The length of the bus is estimated as the number of cores times
the bus width." This yields area quadratic in datapath width; doubling the
bus count quadruples the I-interconnect area (Section VI-B); and a full
crossbar grows quadratically with the number of banks (Kumar et al.,
reference [27]).
"""

from __future__ import annotations

from repro.power.params import DEFAULT_TECH, TechnologyParams
from repro.utils import require_positive


def bus_physical_width_mm(
    width_bytes: int, tech: TechnologyParams = DEFAULT_TECH
) -> float:
    """Physical width of one bus: data wires + address lines, at pitch."""
    require_positive(width_bytes, "width_bytes")
    wires = width_bytes * 8 + tech.bus_address_lines
    return wires * tech.wire_pitch_mm


def single_bus_area_mm2(
    width_bytes: int, core_count: int, tech: TechnologyParams = DEFAULT_TECH
) -> float:
    """Area of one shared bus spanning ``core_count`` cores."""
    require_positive(core_count, "core_count")
    physical_width = bus_physical_width_mm(width_bytes, tech)
    length = core_count * physical_width
    return physical_width * length


def interconnect_area_mm2(
    width_bytes: int,
    core_count: int,
    bus_count: int,
    crossbar: bool = False,
    tech: TechnologyParams = DEFAULT_TECH,
) -> float:
    """Total I-interconnect area.

    Buses: ``bus_count**2`` times the single-bus area (the paper's 4x for
    a double bus). Crossbars: quadratic in the port count.
    """
    require_positive(bus_count, "bus_count")
    single = single_bus_area_mm2(width_bytes, core_count, tech)
    if crossbar:
        # Any-to-any switch: one lane per (core, bank) pair.
        return single * bus_count * core_count
    return single * bus_count * bus_count


def interconnect_static_power_w(
    area_mm2: float, tech: TechnologyParams = DEFAULT_TECH
) -> float:
    """Leakage via the linear power-to-area relation of the NoC model."""
    return area_mm2 * tech.static_power_per_mm2_w


def interconnect_transaction_energy_nj(
    area_mm2: float, tech: TechnologyParams = DEFAULT_TECH
) -> float:
    """Dynamic energy of one transaction, proportional to bus area."""
    return area_mm2 * tech.bus_transaction_energy_per_mm2_nj
