"""McPAT-style lean-core budget: assembles per-structure area and power.

Mirrors how the paper uses McPAT with the validated ARM Cortex-A9
configuration (Section VI-D): the core is a fixed budget, the I-cache and
line buffers are CACTI-priced macros, and the I-interconnect is the wire
model. The master core, LLC and NoC are excluded, as in Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.config import BaseMachineConfig
from repro.power.bus_area import interconnect_area_mm2
from repro.power.cacti import cache_area_mm2, line_buffer_area_mm2
from repro.power.params import DEFAULT_TECH, TechnologyParams


@dataclass(frozen=True, slots=True)
class AreaBreakdown:
    """Worker-cluster area by structure (mm^2)."""

    cores: float
    icaches: float
    line_buffers: float
    interconnect: float

    @property
    def total(self) -> float:
        return self.cores + self.icaches + self.line_buffers + self.interconnect

    def as_dict(self) -> dict[str, float]:
        return {
            "cores": self.cores,
            "icaches": self.icaches,
            "line_buffers": self.line_buffers,
            "interconnect": self.interconnect,
            "total": self.total,
        }


def worker_cluster_area(
    config: BaseMachineConfig, tech: TechnologyParams = DEFAULT_TECH
) -> AreaBreakdown:
    """Area of the worker cores and their instruction-supply hardware.

    Covers exactly what Fig. 12 prices: worker cores (I-cache excluded
    from the core budget), the worker I-caches (private set or shared),
    the per-core line buffers, and the shared I-interconnect when present.
    """
    from repro.machine.model import model_for_config

    topology = model_for_config(config).build_topology(config)
    worker_cores = config.worker_count
    cores = worker_cores * tech.core_area_mm2
    line_buffers = worker_cores * line_buffer_area_mm2(config.line_buffers, tech)
    icaches = 0.0
    interconnect = 0.0
    for group in topology.groups:
        worker_members = [core_id for core_id in group.core_ids if core_id != 0]
        if not worker_members:
            continue  # the master's private I-cache is out of scope
        icaches += cache_area_mm2(group.size_bytes, tech)
        if group.shared:
            interconnect += interconnect_area_mm2(
                config.bus_width_bytes,
                len(group.core_ids),
                config.bus_count,
                crossbar=config.interconnect == "crossbar",
                tech=tech,
            )
    return AreaBreakdown(
        cores=cores,
        icaches=icaches,
        line_buffers=line_buffers,
        interconnect=interconnect,
    )


@dataclass
class ActivityCounts:
    """Dynamic event counts extracted from a simulation result."""

    worker_instructions: int = 0
    icache_accesses: dict[int, int] = field(default_factory=dict)  # size -> count
    line_buffer_lookups: int = 0
    bus_transactions: int = 0

    @classmethod
    def from_result(cls, result, config: BaseMachineConfig) -> "ActivityCounts":
        """Pull the counts Fig. 12's energy model needs from a run."""
        counts = cls()
        counts.worker_instructions = result.worker_committed
        counts.line_buffer_lookups = sum(
            core.line_requests for core in result.cores[1:]
        )
        for group in result.cache_groups:
            worker_members = [cid for cid in group.core_ids if cid != 0]
            if not worker_members:
                continue
            size = group.size_bytes
            counts.icache_accesses[size] = (
                counts.icache_accesses.get(size, 0) + group.accesses
            )
            counts.bus_transactions += group.bus_transactions
        return counts
