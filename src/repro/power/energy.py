"""System energy accounting: energy = total power x execution time.

Combines the static (leakage ~ area) and dynamic (per-event energies x
activity counts) components for the worker cluster, exactly the scope of
the paper's Fig. 12 (master core, LLC and NoC excluded).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import BaseMachineConfig
from repro.machine.results import SimulationResult
from repro.power.bus_area import (
    interconnect_area_mm2,
    interconnect_transaction_energy_nj,
)
from repro.power.cacti import (
    cache_access_energy_nj,
    line_buffer_access_energy_nj,
)
from repro.power.mcpat import ActivityCounts, AreaBreakdown, worker_cluster_area
from repro.power.params import DEFAULT_TECH, TechnologyParams


@dataclass(frozen=True, slots=True)
class EnergyBreakdown:
    """Worker-cluster energy by component, in nanojoules."""

    static: float
    core_dynamic: float
    icache_dynamic: float
    line_buffer_dynamic: float
    interconnect_dynamic: float

    @property
    def total(self) -> float:
        return (
            self.static
            + self.core_dynamic
            + self.icache_dynamic
            + self.line_buffer_dynamic
            + self.interconnect_dynamic
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "static": self.static,
            "core_dynamic": self.core_dynamic,
            "icache_dynamic": self.icache_dynamic,
            "line_buffer_dynamic": self.line_buffer_dynamic,
            "interconnect_dynamic": self.interconnect_dynamic,
            "total": self.total,
        }


@dataclass(frozen=True, slots=True)
class PowerReport:
    """Full area/energy assessment of one simulated design point."""

    config_label: str
    benchmark: str
    execution_cycles: int
    area: AreaBreakdown
    energy: EnergyBreakdown

    @property
    def area_mm2(self) -> float:
        return self.area.total

    @property
    def energy_nj(self) -> float:
        return self.energy.total


def evaluate_power(
    result: SimulationResult,
    config: BaseMachineConfig,
    tech: TechnologyParams = DEFAULT_TECH,
) -> PowerReport:
    """Price one simulation run: area, and energy over its execution time."""
    area = worker_cluster_area(config, tech)
    counts = ActivityCounts.from_result(result, config)

    execution_ns = result.cycles * tech.cycle_time_ns
    static_nj = area.total * tech.static_power_per_mm2_w * execution_ns

    core_dynamic = counts.worker_instructions * tech.core_energy_per_instruction_nj
    icache_dynamic = sum(
        accesses * cache_access_energy_nj(size, tech)
        for size, accesses in counts.icache_accesses.items()
    )
    lb_dynamic = counts.line_buffer_lookups * line_buffer_access_energy_nj(
        config.line_buffers, tech
    )
    if counts.bus_transactions:
        from repro.machine.model import model_for_config

        # Requester count of the widest shared group, straight from the
        # machine's topology (machine-neutral: an all-shared ACMP group
        # includes the master, a banked symmetric group includes core 0).
        topology = model_for_config(config).build_topology(config)
        requesters = max(
            len(group.core_ids) for group in topology.groups if group.shared
        )
        bus_area = interconnect_area_mm2(
            config.bus_width_bytes,
            requesters,
            config.bus_count,
            crossbar=config.interconnect == "crossbar",
            tech=tech,
        )
        bus_dynamic = counts.bus_transactions * interconnect_transaction_energy_nj(
            bus_area, tech
        )
    else:
        bus_dynamic = 0.0

    energy = EnergyBreakdown(
        static=static_nj,
        core_dynamic=core_dynamic,
        icache_dynamic=icache_dynamic,
        line_buffer_dynamic=lb_dynamic,
        interconnect_dynamic=bus_dynamic,
    )
    return PowerReport(
        config_label=result.config_label,
        benchmark=result.benchmark,
        execution_cycles=result.cycles,
        area=area,
        energy=energy,
    )
