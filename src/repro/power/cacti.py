"""CACTI-like cache area and energy model.

Implements the coarse capacity scaling the paper extracts from CACTI [32]:
macro area grows linearly with capacity (plus a fixed overhead) and
per-access dynamic energy grows with the square root of capacity (longer
bitlines/wordlines). Calibrated so a 32 KB I-cache is ~12 % of a lean
core's area, matching the McPAT observations cited in Section II-C.
"""

from __future__ import annotations

import math

from repro.power.params import DEFAULT_TECH, TechnologyParams
from repro.utils import require_positive

KB = 1024.0


def cache_area_mm2(
    size_bytes: int, tech: TechnologyParams = DEFAULT_TECH
) -> float:
    """Silicon area of an SRAM cache macro."""
    require_positive(size_bytes, "size_bytes")
    kb = size_bytes / KB
    return tech.cache_area_base_mm2 + tech.cache_area_per_kb_mm2 * kb


def cache_access_energy_nj(
    size_bytes: int, tech: TechnologyParams = DEFAULT_TECH
) -> float:
    """Dynamic energy of one cache access."""
    require_positive(size_bytes, "size_bytes")
    kb = size_bytes / KB
    return tech.cache_access_energy_base_nj * math.sqrt(kb)


def cache_static_power_w(
    size_bytes: int, tech: TechnologyParams = DEFAULT_TECH
) -> float:
    """Leakage power of the macro (proportional to area)."""
    return cache_area_mm2(size_bytes, tech) * tech.static_power_per_mm2_w


def line_buffer_area_mm2(
    count: int, tech: TechnologyParams = DEFAULT_TECH
) -> float:
    """Area of one core's line-buffer set."""
    require_positive(count, "count")
    return count * tech.line_buffer_area_mm2


def line_buffer_access_energy_nj(
    count: int, tech: TechnologyParams = DEFAULT_TECH
) -> float:
    """Energy of one line-buffer set lookup (CAM width grows with count)."""
    require_positive(count, "count")
    return tech.line_buffer_access_energy_nj * count / 4.0
