"""Area and power models replacing the paper's McPAT/CACTI projections."""

from repro.power.bus_area import (
    bus_physical_width_mm,
    interconnect_area_mm2,
    interconnect_static_power_w,
    interconnect_transaction_energy_nj,
    single_bus_area_mm2,
)
from repro.power.cacti import (
    cache_access_energy_nj,
    cache_area_mm2,
    cache_static_power_w,
    line_buffer_access_energy_nj,
    line_buffer_area_mm2,
)
from repro.power.energy import EnergyBreakdown, PowerReport, evaluate_power
from repro.power.mcpat import ActivityCounts, AreaBreakdown, worker_cluster_area
from repro.power.params import DEFAULT_TECH, TechnologyParams

__all__ = [
    "bus_physical_width_mm",
    "interconnect_area_mm2",
    "interconnect_static_power_w",
    "interconnect_transaction_energy_nj",
    "single_bus_area_mm2",
    "cache_access_energy_nj",
    "cache_area_mm2",
    "cache_static_power_w",
    "line_buffer_access_energy_nj",
    "line_buffer_area_mm2",
    "EnergyBreakdown",
    "PowerReport",
    "evaluate_power",
    "ActivityCounts",
    "AreaBreakdown",
    "worker_cluster_area",
    "DEFAULT_TECH",
    "TechnologyParams",
]
