"""Technology and budget constants for the area/power models (45 nm).

These constants replace the paper's McPAT + CACTI runs (Section VI-D).
They implement the published relations directly:

* an ARM Cortex-A9-class lean core spends ~12-15 % of its area and power
  on the I-cache (McPAT, Section II-C);
* the area of a bus is wires x pitch x length, with a 205 nm wire pitch at
  45 nm and a length of cores x physical bus width, which makes bus area
  quadratic in datapath width (Section VI-D);
* doubling the number of buses quadruples the I-interconnect area
  (Section VI-B);
* total bus power follows a linear power-to-area relation taken from the
  NoC component, with the dynamic share scaled by transaction count;
* energy = total power x execution time.

Absolute values are representative of a 45 nm lean core at 2 GHz; the
experiments consume only *ratios* against the private-I-cache baseline.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TechnologyParams:
    """All tunable constants of the power/area models."""

    # -- geometry -----------------------------------------------------------
    #: Wire pitch at 45 nm, from the paper's reference [33].
    wire_pitch_mm: float = 205e-6
    #: Address lines accompanying a bus datapath.
    bus_address_lines: int = 32

    # -- lean core (Cortex-A9 class) -------------------------------------------
    #: Core area excluding the L1 I-cache.
    core_area_mm2: float = 4.05
    #: Dynamic energy per committed instruction (back-end + fetch control).
    core_energy_per_instruction_nj: float = 0.25

    # -- SRAM (CACTI-like) --------------------------------------------------------
    #: Cache macro area per KB (tags + data + peripheral overhead).
    cache_area_per_kb_mm2: float = 0.01725
    #: Fixed per-macro overhead (decoders, control).
    cache_area_base_mm2: float = 0.01
    #: Dynamic energy per access at 1 KB; scales with sqrt(capacity).
    cache_access_energy_base_nj: float = 0.0088

    #: Line buffer: one 64 B register + CAM tag + shift/rotate logic.
    line_buffer_area_mm2: float = 0.008
    #: Energy per line-buffer set lookup at 4 buffers; scales linearly
    #: with the buffer count (wider CAM search).
    line_buffer_access_energy_nj: float = 0.002

    # -- static power ------------------------------------------------------------
    #: Leakage per mm2 (all structures; power ~ area, Section VI-D).
    static_power_per_mm2_w: float = 0.10

    # -- interconnect ----------------------------------------------------------------
    #: Dynamic energy per bus transaction per mm2 of bus area; derived
    #: from the McPAT NoC dynamic-to-total power ratio.
    bus_transaction_energy_per_mm2_nj: float = 0.05

    # -- clock -------------------------------------------------------------------------
    core_ghz: float = 2.0

    @property
    def cycle_time_ns(self) -> float:
        return 1.0 / self.core_ghz


#: Default technology point used across the experiments.
DEFAULT_TECH = TechnologyParams()
