"""Exception hierarchy for the shared I-cache reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from trace or
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent hardware/workload configuration."""


class TraceError(ReproError):
    """A malformed trace stream, record, or trace file."""


class TraceFormatError(TraceError):
    """A trace file does not conform to the on-disk encoding."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This indicates a bug in the simulator or a trace that violates the
    protocol (for example a ``PARALLEL_END`` without a matching
    ``PARALLEL_START``), never a normal workload condition.
    """


class DeadlockError(SimulationError):
    """No thread can make progress (e.g. mismatched barriers)."""


class WorkloadError(ReproError):
    """An unknown benchmark name or invalid workload model parameter."""


class ObsError(ReproError):
    """An observability-layer failure (metrics merge, timeline export)."""
