"""Runtime replay of OpenMP synchronisation (Section V-A).

The simulation framework "mimics the run-time system by managing the state
of every thread according to the synchronization events in order to
reproduce the same static scheduling of the application". This module is
that runtime: it interprets the five event kinds recorded in the traces —
parallel start/end, wait and signal on critical sections and semaphores,
and barrier — blocking and waking the simulated threads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.runtime.threads import ThreadContext, ThreadState
from repro.trace.records import SyncKind, SyncRecord


@dataclass
class _Lock:
    holder: int | None = None
    waiters: deque[int] = field(default_factory=deque)


@dataclass
class _JoinBarrier:
    """One barrier/join instance with membership fixed at creation.

    ``expected`` snapshots the number of unfinished threads when the
    first participant arrives; it must not be re-derived from thread
    states at later arrivals, or a thread finishing between two
    arrivals would silently shrink the threshold a later arrival is
    compared against, making the release decision depend on the
    finish/arrival interleaving. Departures are handled explicitly
    instead: :meth:`RuntimeCoordinator.thread_finished` decrements the
    expectation for counted participants that can no longer arrive.
    """

    expected: int = 0
    arrived: set[int] = field(default_factory=set)
    released: bool = False


class RuntimeCoordinator:
    """Interprets sync records and manages thread states.

    Fork-join semantics:

    * ``PARALLEL_START(p)`` — the master announces phase ``p``; workers
      reaching their own start of ``p`` before the announcement block.
      The master never waits at a start (fork is asynchronous).
    * ``PARALLEL_END(p)`` — a join barrier over all threads; everyone
      waits until the last participant arrives.
    * ``BARRIER(b)`` — a standalone barrier over all unfinished threads.
    * ``WAIT(l)`` / ``SIGNAL(l)`` — critical-section lock acquire/release
      with FIFO hand-off.
    """

    def __init__(self, contexts: list[ThreadContext]) -> None:
        if not contexts:
            raise SimulationError("runtime requires at least one thread")
        self.contexts = contexts
        self._started_phases: set[int] = set()
        self._start_waiters: dict[int, list[int]] = {}
        self._joins: dict[int, _JoinBarrier] = {}
        self._barriers: dict[int, _JoinBarrier] = {}
        self._locks: dict[int, _Lock] = {}
        self.lock_hand_offs = 0
        #: Ready/wake hook: wake_listener(thread_id, cycle) returns a
        #: sleeping core's components to the kernel's run list whenever
        #: a barrier release, phase start or lock hand-off unblocks its
        #: thread. None (the default) keeps the coordinator pollable.
        self.wake_listener = None

    def _wake(self, thread_id: int, now: int) -> None:
        self.contexts[thread_id].wake(now)
        if self.wake_listener is not None:
            self.wake_listener(thread_id, now)

    @property
    def thread_count(self) -> int:
        return len(self.contexts)

    def deliver(self, thread_id: int, record: SyncRecord, now: int) -> bool:
        """Process one sync record for a thread.

        Returns:
            True when the thread may continue immediately; False when it
            has been blocked (it will be woken by a later event). The
            record is consumed either way.
        """
        kind = record.kind
        if kind is SyncKind.PARALLEL_START:
            return self._parallel_start(thread_id, record.object_id, now)
        if kind is SyncKind.PARALLEL_END:
            return self._join(self._joins, thread_id, record.object_id, now)
        if kind is SyncKind.BARRIER:
            return self._join(self._barriers, thread_id, record.object_id, now)
        if kind is SyncKind.WAIT:
            return self._wait(thread_id, record.object_id, now)
        if kind is SyncKind.SIGNAL:
            return self._signal(thread_id, record.object_id, now)
        raise SimulationError(f"unhandled sync kind {kind}")

    # -- parallel regions -------------------------------------------------

    def _parallel_start(self, thread_id: int, phase: int, now: int) -> bool:
        if thread_id == 0:
            if phase in self._started_phases:
                raise SimulationError(f"master re-starts phase {phase}")
            self._started_phases.add(phase)
            for waiter in self._start_waiters.pop(phase, []):
                self._wake(waiter, now)
            return True
        if phase in self._started_phases:
            return True
        self._start_waiters.setdefault(phase, []).append(thread_id)
        self.contexts[thread_id].block(now)
        return False

    def _join(
        self,
        table: dict[int, _JoinBarrier],
        thread_id: int,
        object_id: int,
        now: int,
    ) -> bool:
        barrier = table.get(object_id)
        if barrier is None:
            participants = sum(
                1 for c in self.contexts if c.state is not ThreadState.FINISHED
            )
            barrier = _JoinBarrier(expected=participants)
            table[object_id] = barrier
        if barrier.released:
            raise SimulationError(
                f"thread {thread_id} arrives at already-released barrier "
                f"{object_id}"
            )
        barrier.arrived.add(thread_id)
        if len(barrier.arrived) >= barrier.expected:
            barrier.released = True
            for arrived_id in barrier.arrived:
                if arrived_id != thread_id:
                    self._wake(arrived_id, now)
            return True
        self.contexts[thread_id].block(now)
        return False

    def thread_finished(self, thread_id: int, now: int) -> None:
        """Note a thread's trace ended: it will never arrive anywhere.

        Open barriers drop the finished thread from their creation-time
        expectation (it was counted as a participant but can no longer
        arrive), so the remaining participants' final arrival still
        releases them. The release decision itself stays arrival-driven:
        a barrier whose *last* awaited participant finishes instead of
        arriving is a protocol violation (the traces promised an arrival
        that never comes) and is surfaced by the deadlock watchdog
        rather than papered over here.
        """
        for table in (self._joins, self._barriers):
            for barrier in table.values():
                if not barrier.released and thread_id not in barrier.arrived:
                    barrier.expected -= 1

    # -- critical sections -------------------------------------------------

    def _wait(self, thread_id: int, lock_id: int, now: int) -> bool:
        lock = self._locks.setdefault(lock_id, _Lock())
        if lock.holder is None:
            lock.holder = thread_id
            return True
        if lock.holder == thread_id:
            raise SimulationError(
                f"thread {thread_id} re-acquires lock {lock_id}"
            )
        lock.waiters.append(thread_id)
        self.contexts[thread_id].block(now)
        return False

    def _signal(self, thread_id: int, lock_id: int, now: int) -> bool:
        lock = self._locks.get(lock_id)
        if lock is None or lock.holder != thread_id:
            raise SimulationError(
                f"thread {thread_id} signals lock {lock_id} it does not hold"
            )
        if lock.waiters:
            next_holder = lock.waiters.popleft()
            lock.holder = next_holder
            self._wake(next_holder, now)
            self.lock_hand_offs += 1
        else:
            lock.holder = None
        return True

    # -- diagnostics -------------------------------------------------------

    def all_blocked(self) -> bool:
        """True when no unfinished thread can run (deadlock indicator)."""
        unfinished = [
            c for c in self.contexts if c.state is not ThreadState.FINISHED
        ]
        return bool(unfinished) and all(
            c.state is ThreadState.BLOCKED for c in unfinished
        )

    def describe_blockage(self) -> str:
        """Human-readable dump of who waits on what, for deadlock errors."""
        parts = []
        for phase, waiters in self._start_waiters.items():
            parts.append(f"phase {phase} start: threads {sorted(waiters)}")
        for object_id, barrier in self._joins.items():
            if not barrier.released:
                parts.append(
                    f"join {object_id}: arrived {sorted(barrier.arrived)}"
                )
        for lock_id, lock in self._locks.items():
            if lock.waiters:
                parts.append(
                    f"lock {lock_id}: held by {lock.holder}, "
                    f"waiting {list(lock.waiters)}"
                )
        return "; ".join(parts) if parts else "no registered waiters"
