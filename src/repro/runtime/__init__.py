"""Runtime replay of OpenMP synchronisation events."""

from repro.runtime.coordinator import RuntimeCoordinator
from repro.runtime.threads import ThreadContext, ThreadState

__all__ = ["RuntimeCoordinator", "ThreadContext", "ThreadState"]
