"""Thread execution contexts for the runtime replay layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ThreadState(enum.Enum):
    """Scheduling state of one simulated thread/core."""

    RUNNING = "running"
    BLOCKED = "blocked"  # waiting on a synchronisation object
    FINISHED = "finished"  # trace fully consumed and pipeline drained


@dataclass
class ThreadContext:
    """Per-thread runtime bookkeeping.

    Attributes:
        thread_id: global thread index (0 = master).
        state: current scheduling state.
        blocked_since: cycle the thread last blocked (for wait accounting).
        block_cycles: total cycles spent blocked on synchronisation.
    """

    thread_id: int
    state: ThreadState = ThreadState.RUNNING
    blocked_since: int = 0
    block_cycles: int = 0

    @property
    def runnable(self) -> bool:
        return self.state is ThreadState.RUNNING

    def block(self, now: int) -> None:
        self.state = ThreadState.BLOCKED
        self.blocked_since = now

    def wake(self, now: int) -> None:
        if self.state is ThreadState.BLOCKED:
            self.block_cycles += now - self.blocked_since
            self.state = ThreadState.RUNNING

    def finish(self, now: int) -> None:
        self.state = ThreadState.FINISHED
