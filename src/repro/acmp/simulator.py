"""The cycle-level ACMP simulation engine.

Per-cycle order of operations:

1. scheduled completions land (line-buffer fills, cache refills);
2. every runnable core's front-end steps (FTQ fill, issue, extract);
3. the shared I-interconnects arbitrate and process grants;
4. every core's back-end attempts to commit, charging stall cycles to
   the front-end's attribution when it starves;
5. blocked cores accumulate synchronisation wait time.

The run terminates when every thread has consumed its trace and drained
its pipeline; the cycle count at that point is the benchmark's execution
time for the configured design point.
"""

from __future__ import annotations

from repro.acmp.config import AcmpConfig
from repro.acmp.results import SimulationResult
from repro.acmp.system import AcmpSystem
from repro.errors import DeadlockError, SimulationError
from repro.runtime.threads import ThreadState
from repro.trace.stream import TraceSet

#: Cycles without any committed instruction before declaring a deadlock.
_STALL_LIMIT = 200_000


class AcmpSimulator:
    """Runs one :class:`AcmpSystem` to completion."""

    def __init__(self, system: AcmpSystem) -> None:
        self.system = system
        self.cycle = 0

    def run(self, max_cycles: int = 500_000_000) -> SimulationResult:
        """Simulate until all threads finish; return collected results.

        Raises:
            DeadlockError: when no thread commits for a long window while
                unfinished threads remain (protocol violation or bug).
        """
        system = self.system
        cores = system.cores
        runnable_cores = cores  # stable list; state checked per cycle
        shared_groups = [
            hw.shared for hw in system.group_hardware if hw.shared is not None
        ]
        events = system.events
        last_progress_cycle = 0
        total_committed_at_progress = 0

        while self.cycle < max_cycles:
            now = self.cycle
            if all(c.context.state is ThreadState.FINISHED for c in cores):
                return system.collect_results(now)

            events.run_due(now)

            for core in runnable_cores:
                if core.context.state is ThreadState.RUNNING:
                    core.frontend.step(now)

            for group in shared_groups:
                group.step(now)

            committed_this_cycle = 0
            for core in cores:
                state = core.context.state
                if state is ThreadState.FINISHED:
                    continue
                if state is ThreadState.BLOCKED:
                    core.backend.step(now, "sync")
                    continue
                cause = core.frontend.stall_cause(now)
                committed_this_cycle += core.backend.step(now, cause)

            if committed_this_cycle:
                last_progress_cycle = now
                total_committed_at_progress += committed_this_cycle
            elif now - last_progress_cycle > _STALL_LIMIT:
                self._raise_deadlock(now)

            self.cycle += 1

        raise SimulationError(
            f"simulation exceeded max_cycles={max_cycles} for "
            f"benchmark {system.traces.benchmark!r}"
        )

    def _raise_deadlock(self, now: int) -> None:
        system = self.system
        states = {
            core.core_id: core.context.state.value for core in system.cores
        }
        raise DeadlockError(
            f"no instruction committed for {_STALL_LIMIT} cycles at cycle "
            f"{now} (benchmark {system.traces.benchmark!r}, config "
            f"{system.config.label()}): core states {states}; runtime: "
            f"{system.runtime.describe_blockage()}"
        )


def simulate(
    config: AcmpConfig,
    traces: TraceSet,
    max_cycles: int = 500_000_000,
    warm_l2: bool = True,
) -> SimulationResult:
    """Build and run one design point over one trace set.

    Args:
        warm_l2: pre-fill the instruction-side L2s with the code footprint
            (see :meth:`AcmpSystem.warm_instruction_l2s`); on by default
            because the paper's full-length runs operate with code-resident
            L2s.
    """
    system = AcmpSystem(config, traces)
    if warm_l2:
        system.warm_instruction_l2s()
    return AcmpSimulator(system).run(max_cycles=max_cycles)
