"""ACMP entry points for the machine-neutral simulation driver.

The main loop and the build-and-run helper are machine-agnostic
(:mod:`repro.machine.simulator`); this module keeps the ACMP-named
aliases every existing caller and the seed API used.
"""

from __future__ import annotations

from repro.acmp.config import AcmpConfig
from repro.acmp.system import AcmpSystem
from repro.machine.results import SimulationResult
from repro.machine.simulator import SystemSimulator
from repro.trace.stream import TraceSet

__all__ = ["AcmpSimulator", "simulate"]


class AcmpSimulator(SystemSimulator):
    """Runs one :class:`AcmpSystem` to completion on a simulation kernel."""


def simulate(
    config: AcmpConfig,
    traces: TraceSet,
    max_cycles: int = 500_000_000,
    warm_l2: bool = True,
    cycle_skip: bool = True,
) -> SimulationResult:
    """Build and run one ACMP design point over one trace set.

    See :func:`repro.machine.simulator.simulate` for the argument
    semantics; this wrapper only pins the machine to the ACMP.
    """
    system = AcmpSystem(config, traces)
    if warm_l2:
        system.warm_instruction_l2s()
    return AcmpSimulator(system, cycle_skip=cycle_skip).run(
        max_cycles=max_cycles
    )
