"""ACMP configuration (Table I) and the standard design points.

Defaults mirror the paper's simulated ACMP: 1 master + 8 worker cores,
32 KB / 8-way / 64 B / 1-cycle I-caches, 4 line buffers, a 32 B-wide
2-cycle round-robin I-interconnect, 16 KB gshare + 256-entry loop
predictor, 1 MB / 32-way / 20-cycle L2s, a 32 B-wide 4-cycle L2-DRAM bus
and DDR3-1600 DRAM. The machine-neutral substrate (front-end geometry,
interconnect, memory) lives in
:class:`~repro.machine.config.BaseMachineConfig`; this class adds the
ACMP's topology — one big master core plus lean workers partitioned
into shared-I-cache groups.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.machine.config import KB, BaseMachineConfig
from repro.utils import require_positive

__all__ = [
    "KB",
    "AcmpConfig",
    "all_shared_config",
    "baseline_config",
    "worker_shared_config",
]


@dataclass(frozen=True)
class AcmpConfig(BaseMachineConfig):
    """Full parameter set for one simulated ACMP design point."""

    # -- topology ---------------------------------------------------------
    #: Number of lean worker cores (the paper evaluates 8).
    worker_count: int = 8
    #: Worker cores per I-cache: 1 = private baseline; 2/4/8 = shared.
    cores_per_cache: int = 1
    #: When True the master also shares the (single) I-cache (Section VI-E).
    all_shared: bool = False

    # -- I-cache -----------------------------------------------------------
    #: Size of the master core's private I-cache.
    master_icache_bytes: int = 32 * KB
    #: Size of each worker I-cache (private or shared, per Table I the
    #: geometry is identical for any sharing degree).
    worker_icache_bytes: int = 32 * KB

    # -- front-end ---------------------------------------------------------
    mispredict_penalty_master: int = 12
    mispredict_penalty_worker: int = 8

    def __post_init__(self) -> None:
        require_positive(self.worker_count, "worker_count")
        require_positive(self.cores_per_cache, "cores_per_cache")
        if self.cores_per_cache > self.worker_count:
            raise ConfigurationError(
                f"cores_per_cache {self.cores_per_cache} exceeds "
                f"worker_count {self.worker_count}"
            )
        if self.worker_count % self.cores_per_cache:
            raise ConfigurationError(
                f"worker_count {self.worker_count} not divisible by "
                f"cores_per_cache {self.cores_per_cache}"
            )
        if self.all_shared and self.cores_per_cache != self.worker_count:
            raise ConfigurationError(
                "all_shared requires a single worker group "
                "(cores_per_cache == worker_count)"
            )
        super().__post_init__()

    @property
    def core_count(self) -> int:
        """Total cores: the master plus the workers."""
        return 1 + self.worker_count

    @property
    def is_baseline(self) -> bool:
        """True for the private-I-cache baseline (Fig. 5a)."""
        return self.cores_per_cache == 1 and not self.all_shared

    def label(self) -> str:
        """Compact design-point label used in reports."""
        if self.is_baseline:
            return (
                f"baseline::{self.worker_icache_bytes // KB}KB::"
                f"{self.line_buffers}lb"
            )
        scope = "all-shared" if self.all_shared else f"cpc={self.cores_per_cache}"
        bus = "single" if self.bus_count == 1 else ("double" if self.bus_count == 2 else f"{self.bus_count}x")
        return (
            f"{scope}::{self.worker_icache_bytes // KB}KB::"
            f"{self.line_buffers}lb::{bus}-bus"
        )


def baseline_config(**overrides) -> AcmpConfig:
    """The paper's baseline: private 32 KB I-caches (cpc = 1)."""
    return replace(AcmpConfig(), **overrides)


def worker_shared_config(
    cores_per_cache: int = 8,
    icache_kb: int = 16,
    bus_count: int = 2,
    line_buffers: int = 4,
    **overrides,
) -> AcmpConfig:
    """A worker-shared design point (the paper's proposal).

    Defaults to the best configuration of Fig. 12: a 16 KB I-cache shared
    by all eight workers behind a double bus with four line buffers.
    """
    return replace(
        AcmpConfig(),
        cores_per_cache=cores_per_cache,
        worker_icache_bytes=icache_kb * KB,
        bus_count=bus_count,
        line_buffers=line_buffers,
        **overrides,
    )


def all_shared_config(
    icache_kb: int = 32, bus_count: int = 2, **overrides
) -> AcmpConfig:
    """Section VI-E: master and workers share a single 32 KB I-cache."""
    return replace(
        AcmpConfig(),
        cores_per_cache=AcmpConfig().worker_count,
        all_shared=True,
        worker_icache_bytes=icache_kb * KB,
        bus_count=bus_count,
        **overrides,
    )
