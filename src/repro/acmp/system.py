"""ACMP system wiring over the machine-neutral assembly layer.

Given an :class:`AcmpConfig` and a :class:`TraceSet`, builds the full
simulated machine of Fig. 5 — either the baseline with private I-caches
or the shared-I-cache proposal — ready to be run by the cycle engine.
Everything generic (core assembly, group hardware, kernel registration,
warm-up, result collection) lives in :class:`repro.machine.System`;
this class contributes only what makes the machine an ACMP: the
master-plus-worker-groups topology and the big master core's longer
redirect penalty.
"""

from __future__ import annotations

from repro.acmp.config import AcmpConfig
from repro.acmp.topology import build_topology
from repro.engine import EventQueue
from repro.machine.system import Core, System
from repro.machine.topology import Topology

__all__ = ["AcmpSystem", "Core", "EventQueue"]


class AcmpSystem(System):
    """The complete simulated ACMP for one (config, trace set) pair."""

    machine_name = "acmp"

    config: AcmpConfig

    def _build_topology(self) -> Topology:
        return build_topology(self.config)

    def _mispredict_penalty(self, core_id: int) -> int:
        return (
            self.config.mispredict_penalty_master
            if core_id == 0
            else self.config.mispredict_penalty_worker
        )
