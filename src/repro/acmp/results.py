"""Simulation result records (machine-neutral; re-exported for compat).

The record types moved to :mod:`repro.machine.results` when the machine
abstraction layer was introduced — results are identical in shape
across machine models and carry a ``machine`` tag. This module keeps
the historical import path alive.
"""

from repro.machine.results import CacheGroupResult, CoreResult, SimulationResult

__all__ = ["CacheGroupResult", "CoreResult", "SimulationResult"]
