"""ACMP assembly: configuration, topology and wiring over repro.machine.

The ACMP is the first implementation of the
:class:`repro.machine.MachineModel` protocol (registered as ``acmp``);
importing this package registers the model.
"""

from repro.acmp.config import (
    AcmpConfig,
    all_shared_config,
    baseline_config,
    worker_shared_config,
)
from repro.acmp.results import CacheGroupResult, CoreResult, SimulationResult
from repro.acmp.serialization import (
    load_result,
    load_results,
    result_from_dict,
    result_to_dict,
    save_result,
    save_results,
)
from repro.acmp.model import MODEL
from repro.acmp.simulator import AcmpSimulator, simulate
from repro.acmp.system import AcmpSystem, EventQueue
from repro.acmp.topology import CacheGroup, Topology, build_topology

__all__ = [
    "MODEL",
    "load_result",
    "load_results",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "save_results",
    "AcmpConfig",
    "all_shared_config",
    "baseline_config",
    "worker_shared_config",
    "CacheGroupResult",
    "CoreResult",
    "SimulationResult",
    "AcmpSimulator",
    "simulate",
    "AcmpSystem",
    "EventQueue",
    "CacheGroup",
    "Topology",
    "build_topology",
]
