"""JSON persistence for results (machine-neutral; re-exported for compat).

The implementation moved to :mod:`repro.machine.serialization` when the
machine abstraction layer was introduced; payloads are shared across
machine models and tagged with the producing model's name. This module
keeps the historical import path alive.
"""

from repro.machine.serialization import (
    load_result,
    load_results,
    result_from_dict,
    result_to_dict,
    save_result,
    save_results,
)

__all__ = [
    "load_result",
    "load_results",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "save_results",
]
