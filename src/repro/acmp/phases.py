"""Kernel components for the ACMP machine.

The seed engine's per-cycle order of operations (front-ends, shared
interconnects, back-ends) becomes three :class:`~repro.engine.kernel.
KernelComponent` implementations registered with the
:class:`~repro.engine.SimulationKernel` in the same order. Each phase
also implements the cycle-skipping contract: ``skip_horizon`` certifies
when stepping would be a no-op, and ``on_skip`` charges skipped cycles
to the same accounting a stepped run would have produced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine import NEVER
from repro.runtime.threads import ThreadState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acmp.system import Core
    from repro.frontend.ports import SharedIcacheGroup


class FrontendPhase:
    """Steps every runnable core's front-end (FTQ fill, issue, extract)."""

    def __init__(self, cores: list[Core]) -> None:
        self.cores = cores

    def step(self, now: int) -> int:
        for core in self.cores:
            if core.context.state is ThreadState.RUNNING:
                core.frontend.step(now)
        return 0

    def skip_horizon(self, now: int) -> int | None:
        horizon = NEVER
        for core in self.cores:
            if core.context.state is not ThreadState.RUNNING:
                continue
            if core.backend.iq_count:
                # A non-empty IQ commits (or paces towards a commit) in
                # upcoming cycles; the stall pattern is not static.
                return None
            core_horizon = core.frontend.skip_horizon(now)
            if core_horizon is None:
                return None
            if core_horizon < horizon:
                horizon = core_horizon
        return horizon

    def on_skip(self, start: int, cycles: int) -> None:
        pass  # quiescent front-ends accrue nothing per cycle


class InterconnectPhase:
    """Steps the shared I-interconnects (arbitration and grants)."""

    def __init__(self, groups: list[SharedIcacheGroup]) -> None:
        self.groups = groups

    def step(self, now: int) -> int:
        for group in self.groups:
            group.step(now)
        return 0

    def skip_horizon(self, now: int) -> int | None:
        for group in self.groups:
            if not group.idle_at(now):
                return None
        return NEVER

    def on_skip(self, start: int, cycles: int) -> None:
        pass  # idle buses accrue no busy/wait statistics


class CommitPhase:
    """Steps every unfinished core's back-end; reports committed count."""

    def __init__(self, cores: list[Core]) -> None:
        self.cores = cores

    def step(self, now: int) -> int:
        committed = 0
        for core in self.cores:
            state = core.context.state
            if state is ThreadState.FINISHED:
                continue
            if state is ThreadState.BLOCKED:
                core.backend.step(now, "sync")
                continue
            # Pass the attribution lazily: it is only evaluated on a
            # stall, so committing cycles skip the FTQ walk.
            committed += core.backend.step(now, core.frontend.stall_cause)
        return committed

    def skip_horizon(self, now: int) -> int | None:
        for core in self.cores:
            if (
                core.context.state is not ThreadState.FINISHED
                and core.backend.iq_count
            ):
                return None
        return NEVER

    def on_skip(self, start: int, cycles: int) -> None:
        # The front-end phase only certifies a skip when each running
        # core's stall cause is pinned for the whole window, so charging
        # every skipped cycle to the cause observed at its start equals
        # the per-cycle accounting of a stepped run.
        for core in self.cores:
            state = core.context.state
            if state is ThreadState.FINISHED:
                continue
            cause = (
                "sync"
                if state is ThreadState.BLOCKED
                else core.frontend.stall_cause(start)
            )
            core.backend.idle_steps(cycles, cause)
