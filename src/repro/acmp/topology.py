"""ACMP sharing topology: which cores share which I-cache.

Core numbering: core 0 is the master (runs thread 0, the master thread);
cores 1..worker_count are the lean workers. ``cores_per_cache`` partitions
the workers into groups of equal size, each group sharing one I-cache
behind one I-interconnect (Section V-B). In the all-shared variant of
Section VI-E the master joins the single worker group. The
:class:`~repro.machine.topology.CacheGroup` / ``Topology`` dataclasses
are machine-neutral and shared with every other model.
"""

from __future__ import annotations

from repro.acmp.config import AcmpConfig
from repro.machine.topology import CacheGroup, Topology

__all__ = ["CacheGroup", "Topology", "build_topology"]


def build_topology(config: AcmpConfig) -> Topology:
    """Derive the cache grouping from a configuration."""
    groups: list[CacheGroup] = []
    if config.all_shared:
        # One cache for everyone, master included.
        core_ids = tuple(range(config.core_count))
        groups.append(
            CacheGroup(index=0, core_ids=core_ids, size_bytes=config.worker_icache_bytes)
        )
        return Topology(groups=tuple(groups), core_count=config.core_count)

    # Master always keeps its private I-cache.
    groups.append(
        CacheGroup(index=0, core_ids=(0,), size_bytes=config.master_icache_bytes)
    )
    workers = list(range(1, config.core_count))
    size = config.cores_per_cache
    for start in range(0, len(workers), size):
        member_ids = tuple(workers[start : start + size])
        groups.append(
            CacheGroup(
                index=len(groups),
                core_ids=member_ids,
                size_bytes=config.worker_icache_bytes,
            )
        )
    return Topology(groups=tuple(groups), core_count=config.core_count)
