"""The ACMP machine model: registry glue for the paper's machine."""

from __future__ import annotations

from repro.acmp.config import (
    AcmpConfig,
    all_shared_config,
    baseline_config,
    worker_shared_config,
)
from repro.acmp.system import AcmpSystem
from repro.machine.model import register_model
from repro.machine.serialization import _FORMAT_VERSION
from repro.trace.stream import TraceSet


class AcmpModel:
    """1 big master core + lean workers with shareable I-caches (Fig. 5)."""

    name = "acmp"
    config_type = AcmpConfig

    def default_config(self, **overrides) -> AcmpConfig:
        return baseline_config(**overrides)

    def baseline_config(self, **overrides) -> AcmpConfig:
        """The paper's baseline: private 32 KB worker I-caches."""
        return baseline_config(**overrides)

    def shared_config(
        self,
        cores_per_cache: int = 8,
        icache_kb: int = 16,
        bus_count: int = 2,
        line_buffers: int = 4,
        **overrides,
    ) -> AcmpConfig:
        """A worker-shared design point (the paper's proposal)."""
        return worker_shared_config(
            cores_per_cache=cores_per_cache,
            icache_kb=icache_kb,
            bus_count=bus_count,
            line_buffers=line_buffers,
            **overrides,
        )

    def all_shared_config(
        self, icache_kb: int = 32, bus_count: int = 2, **overrides
    ) -> AcmpConfig:
        """Section VI-E: master and workers share a single I-cache."""
        return all_shared_config(
            icache_kb=icache_kb, bus_count=bus_count, **overrides
        )

    def build_system(
        self, config: AcmpConfig, traces: TraceSet, *, hollow: bool = False
    ) -> AcmpSystem:
        return AcmpSystem(config, traces, hollow=hollow)

    def build_topology(self, config: AcmpConfig):
        from repro.acmp.topology import build_topology

        return build_topology(config)

    def config_space(self) -> dict[str, tuple]:
        """The dimensions the paper sweeps (Figs. 7-13)."""
        return {
            "cores_per_cache": (1, 2, 4, 8),
            "worker_icache_bytes": (16 * 1024, 32 * 1024),
            "bus_count": (1, 2),
            "line_buffers": (2, 4, 8),
            "arbitration": ("round-robin", "icount"),
            "interconnect": ("bus", "crossbar"),
        }

    def standard_design_points(self) -> list[AcmpConfig]:
        """Baseline, the naive-sharing sweep, and the proposal."""
        return [
            baseline_config(),
            worker_shared_config(
                cores_per_cache=2, icache_kb=32, bus_count=1, line_buffers=4
            ),
            worker_shared_config(
                cores_per_cache=4, icache_kb=32, bus_count=1, line_buffers=4
            ),
            worker_shared_config(
                cores_per_cache=8, icache_kb=32, bus_count=1, line_buffers=4
            ),
            worker_shared_config(),  # cpc=8, 16 KB, double bus (Fig. 12 best)
            all_shared_config(),
        ]

    def result_schema(self) -> dict:
        """Shape of this model's serialized :class:`SimulationResult`."""
        return {
            "machine": self.name,
            "version": _FORMAT_VERSION,
            "core_roles": {"0": "big master", "1..worker_count": "lean worker"},
            "cache_groups": "group 0 = master private; workers grouped by "
            "cores_per_cache (all_shared merges everyone)",
        }


MODEL = register_model(AcmpModel())
