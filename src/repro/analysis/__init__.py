"""Analysis: characterisation, sharing, reporting."""

from repro.analysis.characterize import (
    BasicBlockProfile,
    MpkiProfile,
    basic_block_profile,
    mpki_profile,
)
from repro.analysis.report import format_bar_chart, format_stacked_bars, format_table
from repro.analysis.sharing import SharingProfile, sharing_profile

__all__ = [
    "BasicBlockProfile",
    "MpkiProfile",
    "basic_block_profile",
    "mpki_profile",
    "format_bar_chart",
    "format_stacked_bars",
    "format_table",
    "SharingProfile",
    "sharing_profile",
]
