"""Trace characterisation: basic-block lengths and region MPKI.

Backs Figs. 2 and 3: the paper instruments only the master thread and
separates serial from parallel sections; we do the same over the
synthesised master trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.functional import RegionMpki, characterize_regions
from repro.trace.stream import ThreadTrace
from repro.utils import RunningStats


@dataclass(frozen=True, slots=True)
class BasicBlockProfile:
    """Mean dynamic basic-block lengths (bytes), Fig. 2's quantity."""

    serial_mean_bytes: float
    parallel_mean_bytes: float
    serial_blocks: int
    parallel_blocks: int

    @property
    def parallel_to_serial_ratio(self) -> float:
        if self.serial_mean_bytes == 0:
            return 0.0
        return self.parallel_mean_bytes / self.serial_mean_bytes


def basic_block_profile(trace: ThreadTrace) -> BasicBlockProfile:
    """Average dynamic basic-block size per region over one thread."""
    serial = RunningStats()
    parallel = RunningStats()
    for block in trace.serial_region_blocks():
        serial.add(block.size_bytes)
    for block in trace.parallel_region_blocks():
        parallel.add(block.size_bytes)
    return BasicBlockProfile(
        serial_mean_bytes=serial.mean,
        parallel_mean_bytes=parallel.mean,
        serial_blocks=serial.count,
        parallel_blocks=parallel.count,
    )


@dataclass(frozen=True, slots=True)
class MpkiProfile:
    """Serial/parallel I-cache MPKI (Fig. 3's quantity)."""

    serial: RegionMpki
    parallel: RegionMpki


def mpki_profile(
    trace: ThreadTrace,
    size_bytes: int = 32 * 1024,
    ways: int = 8,
    line_bytes: int = 64,
) -> MpkiProfile:
    """Fig. 3 methodology: a 32 KB/8-way/64 B/LRU cache over the master
    trace, with misses attributed to the region they occur in."""
    serial, parallel = characterize_regions(trace, size_bytes, ways, line_bytes)
    return MpkiProfile(serial=serial, parallel=parallel)
