"""ASCII rendering of experiment tables and bar series.

The experiment drivers print "the same rows/series the paper reports":
per-benchmark bars (normalised execution time, MPKI, access ratios, CPI
stacks) and small summary tables. This module renders them uniformly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width table with right-aligned numeric columns."""
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    reference: float | None = None,
) -> str:
    """Render a horizontal ASCII bar chart, one row per label.

    Args:
        reference: draw a tick at this value (e.g. 1.0 for a normalised
            chart) when it falls inside the plotted range.
    """
    if not values:
        return "(no data)"
    maximum = max(max(values.values()), reference or 0.0, 1e-12)
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        length = int(round(width * value / maximum))
        bar = "#" * length
        if reference is not None:
            tick = int(round(width * reference / maximum))
            if 0 <= tick < width:
                padded = list(bar.ljust(width))
                padded[tick] = "|" if padded[tick] == " " else padded[tick]
                bar = "".join(padded).rstrip()
        lines.append(
            f"{label.ljust(label_width)}  {value:8.3f}{unit}  {bar}"
        )
    return "\n".join(lines)


def format_stacked_bars(
    stacks: Mapping[str, Mapping[str, float]],
    components: Sequence[str],
    symbols: Mapping[str, str],
    width: int = 50,
) -> str:
    """Render stacked horizontal bars (CPI stacks, Fig. 8 style)."""
    if not stacks:
        return "(no data)"
    totals = {label: sum(stack.values()) for label, stack in stacks.items()}
    maximum = max(totals.values()) or 1e-12
    label_width = max(len(label) for label in stacks)
    lines = []
    for label, stack in stacks.items():
        segments = []
        for component in components:
            value = stack.get(component, 0.0)
            length = int(round(width * value / maximum))
            segments.append(symbols.get(component, "?") * length)
        bar = "".join(segments)
        lines.append(f"{label.ljust(label_width)}  {totals[label]:7.3f}  {bar}")
    legend = "  ".join(
        f"{symbols.get(component, '?')}={component}" for component in components
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
