"""Instruction-sharing analysis across threads (Fig. 4).

The paper measures "the percentage of instruction footprint shared among
all the threads running the application" in parallel sections only, both
statically (unique code touched) and dynamically (weighted by execution
frequency).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.trace.stream import TraceSet


@dataclass(frozen=True, slots=True)
class SharingProfile:
    """Static and dynamic instruction sharing for one benchmark."""

    static_sharing: float  # |intersection| / |union| of per-thread footprints
    dynamic_sharing: float  # fraction of dynamic instrs in common code
    union_footprint_blocks: int
    common_footprint_blocks: int


def sharing_profile(trace_set: TraceSet) -> SharingProfile:
    """Measure cross-thread instruction sharing on parallel-region code.

    Static sharing compares per-thread sets of executed block addresses;
    dynamic sharing weighs each executed instruction by whether its block
    is common to every thread.
    """
    footprints: list[set[int]] = []
    dynamic_counts: list[Counter[int]] = []
    for thread in trace_set.threads:
        addresses: set[int] = set()
        counts: Counter[int] = Counter()
        for block in thread.parallel_region_blocks():
            addresses.add(block.address)
            counts[block.address] += block.instruction_count
        footprints.append(addresses)
        dynamic_counts.append(counts)

    non_empty = [fp for fp in footprints if fp]
    if not non_empty:
        return SharingProfile(0.0, 0.0, 0, 0)
    common = set.intersection(*non_empty)
    union = set.union(*non_empty)

    total_instructions = 0
    shared_instructions = 0
    for counts in dynamic_counts:
        for address, instructions in counts.items():
            total_instructions += instructions
            if address in common:
                shared_instructions += instructions

    return SharingProfile(
        static_sharing=len(common) / len(union) if union else 0.0,
        dynamic_sharing=(
            shared_instructions / total_instructions if total_instructions else 0.0
        ),
        union_footprint_blocks=len(union),
        common_footprint_blocks=len(common),
    )
