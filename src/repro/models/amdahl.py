"""Hill-Marty multicore speedup model (Fig. 1).

Reproduces the paper's motivation figure: for a fixed hardware budget of
16 base-core equivalents (BCE), compare two symmetric CMPs (4 big cores,
or 16 small cores) against an asymmetric CMP (1 big + 12 small) as the
serial code fraction varies. The cost model, core-performance assumption
(a big core spends 4x the resources of a small core for 2x the
performance, i.e. perf(r) = sqrt(r)) and the constant cache/interconnect
cost are taken from Hill & Marty [4], as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def core_performance(resources: float) -> float:
    """Performance of one core built from ``resources`` BCEs: sqrt(r)."""
    if resources <= 0:
        raise ConfigurationError(f"resources must be positive, got {resources}")
    return math.sqrt(resources)


def symmetric_speedup(
    serial_fraction: float, budget_bce: int, core_size_bce: float
) -> float:
    """Speedup of a symmetric CMP of ``budget/core_size`` equal cores.

    Amdahl with per-core performance ``perf(r)``: the serial part runs on
    one core at perf(r), the parallel part on all cores.
    """
    _check_fraction(serial_fraction)
    if core_size_bce <= 0 or core_size_bce > budget_bce:
        raise ConfigurationError(
            f"core size {core_size_bce} incompatible with budget {budget_bce}"
        )
    core_count = budget_bce // core_size_bce
    perf = core_performance(core_size_bce)
    serial_time = serial_fraction / perf
    parallel_time = (1.0 - serial_fraction) / (perf * core_count)
    return 1.0 / (serial_time + parallel_time)


def asymmetric_speedup(
    serial_fraction: float, budget_bce: int, big_core_bce: float
) -> float:
    """Speedup of an ACMP: one big core plus small cores on the remainder.

    The serial part runs on the big core; during parallel sections the big
    core works alongside the ``budget - big_core_bce`` small cores (the
    Hill-Marty asymmetric formulation the paper adopts).
    """
    _check_fraction(serial_fraction)
    if big_core_bce <= 0 or big_core_bce > budget_bce:
        raise ConfigurationError(
            f"big core {big_core_bce} incompatible with budget {budget_bce}"
        )
    small_cores = budget_bce - big_core_bce
    big_perf = core_performance(big_core_bce)
    serial_time = serial_fraction / big_perf
    parallel_time = (1.0 - serial_fraction) / (big_perf + small_cores)
    return 1.0 / (serial_time + parallel_time)


def _check_fraction(serial_fraction: float) -> None:
    if not (0.0 <= serial_fraction <= 1.0):
        raise ConfigurationError(
            f"serial fraction must be in [0, 1], got {serial_fraction}"
        )


@dataclass(frozen=True, slots=True)
class SpeedupPoint:
    """One x-axis point of Fig. 1."""

    serial_fraction: float
    symmetric_big: float  # 4 big cores (4 BCE each)
    symmetric_small: float  # 16 small cores (1 BCE each)
    asymmetric: float  # 1 big (4 BCE) + 12 small


def figure1_series(
    serial_fractions: list[float] | None = None,
    budget_bce: int = 16,
    big_core_bce: float = 4.0,
) -> list[SpeedupPoint]:
    """Compute the three Fig. 1 curves.

    Defaults follow the paper: 16 BCE budget; a big core spends 4x the
    resources of a small core for 2x the performance.
    """
    if serial_fractions is None:
        serial_fractions = [f / 100.0 for f in (0, 1, 2, 5, 10, 15, 20, 25, 30)]
    points = []
    for fraction in serial_fractions:
        points.append(
            SpeedupPoint(
                serial_fraction=fraction,
                symmetric_big=symmetric_speedup(fraction, budget_bce, big_core_bce),
                symmetric_small=symmetric_speedup(fraction, budget_bce, 1.0),
                asymmetric=asymmetric_speedup(fraction, budget_bce, big_core_bce),
            )
        )
    return points


def acmp_crossover_fraction(
    budget_bce: int = 16, big_core_bce: float = 4.0, resolution: int = 10_000
) -> float:
    """Smallest serial fraction at which the ACMP beats both symmetric CMPs.

    The paper reads ~2 % off Fig. 1 ("With the serial code fraction above
    2 %, an ACMP outperforms both symmetric CMP designs").
    """
    for step in range(resolution + 1):
        fraction = step / resolution
        acmp = asymmetric_speedup(fraction, budget_bce, big_core_bce)
        best_symmetric = max(
            symmetric_speedup(fraction, budget_bce, big_core_bce),
            symmetric_speedup(fraction, budget_bce, 1.0),
        )
        if acmp > best_symmetric:
            return fraction
    return 1.0
