"""Analytical models: Hill-Marty ACMP speedup (Fig. 1)."""

from repro.models.amdahl import (
    SpeedupPoint,
    acmp_crossover_fraction,
    asymmetric_speedup,
    core_performance,
    figure1_series,
    symmetric_speedup,
)

__all__ = [
    "SpeedupPoint",
    "acmp_crossover_fraction",
    "asymmetric_speedup",
    "core_performance",
    "figure1_series",
    "symmetric_speedup",
]
