"""repro: reproduction of "Sharing the Instruction Cache Among Lean Cores
on an Asymmetric CMP for HPC Applications" (Milic et al., ISPASS 2017).

A trace-driven cycle-level simulator built on a machine-model
abstraction layer (:mod:`repro.machine`): the paper's asymmetric CMP
(1 big master core + 8 lean workers whose I-caches may be shared behind
a single/double bus, :mod:`repro.acmp`) and a symmetric CMP of uniform
lean cores with per-core or banked front-ends (:mod:`repro.scmp`), plus
every substrate the paper's methodology depends on: a Pin-style trace
model with synthetic HPC workload generation, a decoupled front-end
(gshare + loop predictor, FTQ, line buffers), an OpenMP-like runtime
replay layer, an L2/DDR3 memory hierarchy, and McPAT/CACTI-style
area/energy models.

Quickstart::

    from repro import baseline_config, worker_shared_config, simulate
    from repro import synthesize_benchmark

    traces = synthesize_benchmark("UA", thread_count=9, scale=0.5)
    base = simulate(baseline_config(), traces)
    shared = simulate(worker_shared_config(), traces)
    print(shared.cycles / base.cycles)

``simulate`` accepts any registered machine model's configuration; see
``repro.machine.get_model`` / ``model_names`` for the registry.

To regenerate a paper figure::

    python -m repro.experiments fig07
"""

from repro.acmp import (
    AcmpConfig,
    AcmpSimulator,
    AcmpSystem,
    SimulationResult,
    all_shared_config,
    baseline_config,
    worker_shared_config,
)
from repro.acmp import (
    simulate as simulate_acmp,
)
from repro.machine import (
    MachineModel,
    SystemSimulator,
    get_model,
    model_for_config,
    model_names,
    register_model,
    simulate,
)
from repro.scmp import (
    ScmpConfig,
    ScmpSystem,
    banked_config,
    private_config,
)
from repro.campaign import (
    Campaign,
    CampaignReport,
    ResultStore,
    RunSpec,
    run_campaign,
)
from repro.engine import Clock, EventQueue, SimulationKernel
from repro.sampling import SamplingPlan, simulate_sampled
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    ReproError,
    SimulationError,
    TraceError,
    TraceFormatError,
    WorkloadError,
)
from repro.power import PowerReport, evaluate_power, worker_cluster_area
from repro.trace import ThreadTrace, TraceSet
from repro.trace.synthesis import synthesize, synthesize_benchmark
from repro.workloads import (
    ALL_BENCHMARKS,
    WorkloadModel,
    benchmark_names,
    get_benchmark,
)

__version__ = "1.0.0"

__all__ = [
    "AcmpConfig",
    "AcmpSimulator",
    "AcmpSystem",
    "MachineModel",
    "ScmpConfig",
    "ScmpSystem",
    "SimulationResult",
    "SystemSimulator",
    "all_shared_config",
    "banked_config",
    "baseline_config",
    "get_model",
    "model_for_config",
    "model_names",
    "private_config",
    "register_model",
    "simulate",
    "simulate_sampled",
    "simulate_acmp",
    "worker_shared_config",
    "Campaign",
    "CampaignReport",
    "ResultStore",
    "RunSpec",
    "SamplingPlan",
    "run_campaign",
    "Clock",
    "EventQueue",
    "SimulationKernel",
    "ConfigurationError",
    "DeadlockError",
    "ReproError",
    "SimulationError",
    "TraceError",
    "TraceFormatError",
    "WorkloadError",
    "PowerReport",
    "evaluate_power",
    "worker_cluster_area",
    "TraceSet",
    "ThreadTrace",
    "synthesize",
    "synthesize_benchmark",
    "ALL_BENCHMARKS",
    "WorkloadModel",
    "benchmark_names",
    "get_benchmark",
    "__version__",
]
