"""Instruction TLB model (Section VII future-work extension).

The paper's conclusion proposes "sharing both the iTLB and branch
predictor" among the lean cores for the same cross-thread constructive
interference the shared I-cache exhibits. This module provides the iTLB:
a small fully-associative translation cache consulted once per fetched
line's page; a miss charges a fixed page-walk penalty before the fetch
can issue.

HPC instruction footprints span only a handful of pages, so private iTLB
miss rates are dominated by cold misses — exactly the component a shared
iTLB amortises across threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils import log2_int, require_positive, require_power_of_two


@dataclass
class ITlbStats:
    lookups: int = 0
    misses: int = 0
    #: Misses to pages never translated before (cold).
    compulsory_misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0


class InstructionTlb:
    """Fully-associative iTLB with LRU replacement.

    Args:
        entries: translation slots (lean-core scale, e.g. 32).
        page_bytes: page size (4 KB).
        miss_penalty: cycles a page walk adds to the first fetch of an
            untranslated page.
    """

    def __init__(
        self,
        entries: int = 32,
        page_bytes: int = 4096,
        miss_penalty: int = 30,
    ) -> None:
        require_positive(entries, "entries")
        require_power_of_two(page_bytes, "page_bytes")
        require_positive(miss_penalty, "miss_penalty")
        self.entries = entries
        self.page_bytes = page_bytes
        self.miss_penalty = miss_penalty
        self._page_shift = log2_int(page_bytes)
        # page number -> last-use clock; LRU eviction on overflow.
        self._translations: dict[int, int] = {}
        self._clock = 0
        self._seen_pages: set[int] = set()
        self.stats = ITlbStats()

    def page_of(self, address: int) -> int:
        return address >> self._page_shift

    def translate(self, address: int) -> int:
        """Look up the page containing ``address``.

        Returns the extra cycles the fetch must wait: 0 on a hit, the
        page-walk penalty on a miss (the translation is installed).
        """
        # One lookup per fetched line: inline page_of (a shift by the
        # constant page mask captured at construction).
        page = address >> self._page_shift
        self._clock += 1
        self.stats.lookups += 1
        if page in self._translations:
            self._translations[page] = self._clock
            return 0
        self.stats.misses += 1
        if page not in self._seen_pages:
            self.stats.compulsory_misses += 1
            self._seen_pages.add(page)
        if len(self._translations) >= self.entries:
            victim = min(self._translations, key=self._translations.__getitem__)
            del self._translations[victim]
        self._translations[page] = self._clock
        return self.miss_penalty

    def resident_pages(self) -> set[int]:
        return set(self._translations)

    # -- warm-state checkpoints --------------------------------------------

    def warm_state(self) -> dict:
        """JSON-ready snapshot: resident translations plus the pages ever
        seen (the compulsory-miss classifier)."""
        return {
            "clock": self._clock,
            "pages": [
                [page, last_use]
                for page, last_use in self._translations.items()
            ],
            "seen": self._seen_pages,
        }

    def load_warm_state(self, state) -> None:
        pages = state["pages"]
        if len(pages) > self.entries:
            raise ValueError(
                f"iTLB snapshot holds {len(pages)} translations but the "
                f"TLB has only {self.entries} entries"
            )
        self._translations = {page: last_use for page, last_use in pages}
        # Adopt live sets by reference; JSON round trips hand back lists.
        seen = state["seen"]
        self._seen_pages = seen if isinstance(seen, set) else set(seen)
        self._clock = int(state["clock"])
