"""Line fetch requests: the unit of work between front-end and I-cache."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RequestState(enum.Enum):
    """Lifecycle of one line fetch, used for stall attribution (Fig. 8)."""

    #: Queued at the I-interconnect, waiting for a bus grant (contention).
    QUEUED = "queued"
    #: Granted; traversing the bus towards the I-cache.
    ON_BUS = "on-bus"
    #: At the I-cache; the access (hit) is completing.
    CACHE = "cache"
    #: Missed in the I-cache; being served by L2/DRAM.
    MISS = "miss"
    #: Line delivered to the requesting core's line buffer.
    DONE = "done"


@dataclass
class LineRequest:
    """One outstanding I-cache line fetch from a core front-end.

    Attributes:
        core_id: global core index of the requester.
        line_address: the 64 B-aligned address being fetched.
        issued_at: cycle the front-end issued the request.
        state: current lifecycle state.
        granted_at: bus-grant cycle (shared path only).
        arrival_at: cycle the request reaches the cache (after bus latency).
        completion_at: cycle the line lands in the line buffer (set once
            known; misses learn it only after the L2/DRAM path resolves).
        icache_hit: whether the I-cache access hit (set at access time).
    """

    core_id: int
    line_address: int
    issued_at: int
    state: RequestState = RequestState.QUEUED
    granted_at: int | None = None
    arrival_at: int | None = None
    completion_at: int | None = None
    icache_hit: bool | None = None

    def stall_cause(self, now: int) -> str:
        """Which CPI-stack component an empty back-end should charge."""
        if self.state is RequestState.QUEUED:
            return "ibus_congestion"
        if self.state is RequestState.ON_BUS:
            return "ibus_latency"
        if self.state is RequestState.MISS:
            return "memory"
        if self.state is RequestState.CACHE:
            return "icache_latency"
        return "other"
