"""The decoupled core front-end (Fig. 5, Section IV-A).

Pipeline stages modelled per cycle:

1. **FTQ fill** — the fetch predictor consumes the trace one basic block
   per cycle and pushes it into the fetch target queue. A mispredicted
   terminating branch stalls further fills for the redirect penalty
   (front-end flush + refill bubble). Synchronisation records are
   delivered to the runtime once the pipeline has drained.
2. **Issue** — the fetch engine walks the FTQ's pending line *pieces* in
   order. A piece whose line sits in a line buffer is ready immediately
   (no I-cache access — this is what makes the loop buffer cut shared-bus
   traffic, Fig. 9); a pending line merges; otherwise a line buffer is
   allocated and a request issued to the I-cache port (private cache or
   shared interconnect). One new request per cycle.
3. **Extract** — one ready line per cycle is shifted/rotated into the
   instruction queue feeding the back-end.

Consecutive fall-through blocks naturally coalesce at the line level:
their pieces hit the same line buffer, so a *fetch block* spanning several
basic blocks costs a single I-cache access, as in the paper's FTQ design.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.branch.fetch_predictor import FetchPredictor
from repro.cache.line_buffer import LineBufferSet, LookupState
from repro.engine import NEVER
from repro.errors import SimulationError
from repro.frontend.itlb import InstructionTlb
from repro.frontend.request import LineRequest
from repro.runtime.coordinator import RuntimeCoordinator
from repro.runtime.threads import ThreadContext, ThreadState
from repro.trace.records import (
    BasicBlockRecord,
    EndRecord,
    IpcRecord,
    SyncRecord,
)
from repro.trace.stream import TraceStream


class PieceStatus(enum.Enum):
    UNISSUED = "unissued"
    WAITING = "waiting"  # merged into an in-flight fetch of the same line
    REQUESTED = "requested"  # owns an outstanding I-cache request
    READY = "ready"  # instructions available for extraction


@dataclass
class _Piece:
    """The part of a basic block that falls within one cache line."""

    line: int
    instructions: int
    status: PieceStatus = PieceStatus.UNISSUED
    request: LineRequest | None = None
    #: whether this piece's line request was already counted in the
    #: access-ratio statistics (one count per piece, ever).
    counted: bool = False


@dataclass
class _FtqEntry:
    pieces: deque[_Piece] = field(default_factory=deque)


@dataclass
class FetchStats:
    """Front-end counters reported per core."""

    blocks_fetched: int = 0
    redirects: int = 0
    sync_events: int = 0


class FetchEngine:
    """One core's front-end. Stepped once per cycle while runnable."""

    #: How many pieces ahead of the extraction point the issue stage may
    #: look; matches the outstanding-request capability of the buffers.
    ISSUE_WINDOW = 8

    def __init__(
        self,
        core_id: int,
        context: ThreadContext,
        stream: TraceStream,
        predictor: FetchPredictor,
        line_buffers: LineBufferSet,
        port,
        runtime: RuntimeCoordinator,
        *,
        ftq_capacity: int = 8,
        mispredict_penalty: int = 8,
        line_bytes: int = 64,
        itlb: InstructionTlb | None = None,
    ) -> None:
        self.core_id = core_id
        self.context = context
        self.stream = stream
        self.predictor = predictor
        self.line_buffers = line_buffers
        self.port = port
        self.runtime = runtime
        self.ftq_capacity = ftq_capacity
        self.mispredict_penalty = mispredict_penalty
        self._line_mask = ~(line_bytes - 1)
        self._line_bytes = line_bytes
        self._ftq: deque[_FtqEntry] = deque()
        self._redirect_until = 0
        self._extracted_instructions = 0
        # Issue-stage work flag: the scan over pending pieces only changes
        # outcome after a new block is pushed, a line fill arrives, or a
        # previous scan stopped at its one-request-per-cycle limit.
        self._issue_pending = False
        #: Optional iTLB (Section VII extension); None disables translation.
        self.itlb = itlb
        self._tlb_stall_until = 0
        #: A mispredict was detected; fetch stalls until the pipeline
        #: drains (branch resolution), then pays the redirect penalty.
        self._redirect_drain = False
        #: True when the last step's three stages all did nothing — a
        #: cheap hint that a sleep probe is worth running. Purely a
        #: performance gate: :meth:`sleep_state` is the correctness
        #: check, and an un-probed front-end simply stays on the run
        #: list stepping no-ops, exactly like the reference engine.
        self.idle_step = False
        self.stats = FetchStats()
        #: set by attach_backend: callable returning free IQ capacity
        self.iq_space = lambda: 1 << 30
        #: set by attach_backend: callable(instructions) adds to the IQ
        self.iq_push = lambda count: None
        #: set by attach_backend: callable(ipc) retargets the back-end
        self.on_ipc = lambda ipc: None

    # -- back-end wiring ---------------------------------------------------

    def attach_backend(self, backend, iq_capacity: int | None = None) -> None:
        """Wire a back-end's instruction queue into this front-end.

        The front-end needs three capabilities from the back-end — free
        IQ space (extraction gate), pushing extracted instructions, and
        retargeting the commit rate on IPC records — plus the IQ capacity
        so :meth:`_drained` can recognise an empty pipeline.

        Args:
            backend: an object with ``iq_space()``, ``iq_push(count)``,
                ``set_ipc(ipc)`` and an ``iq_capacity`` attribute (the
                :class:`~repro.backend.backend.CommitEngine` interface).
            iq_capacity: override for the drained-IQ threshold; defaults
                to ``backend.iq_capacity``.
        """
        self.iq_space = backend.iq_space
        self.iq_push = backend.iq_push
        self.on_ipc = backend.set_ipc
        self._iq_capacity_hint = (
            backend.iq_capacity if iq_capacity is None else iq_capacity
        )

    # -- per-cycle step ----------------------------------------------------

    def step(self, now: int) -> None:
        """Run fill, issue and extract for this cycle."""
        if self.context.state is not ThreadState.RUNNING:
            return
        acted = self._fill_ftq(now)
        if self._issue(now):
            acted = True
        if self._extract(now):
            acted = True
        self.idle_step = not acted

    # -- stage 1: FTQ fill ---------------------------------------------------

    def _fill_ftq(self, now: int) -> bool:
        """One fill-stage cycle; returns whether anything happened."""
        if self._redirect_drain:
            # A mispredicted branch is in flight: it resolves roughly when
            # the pre-branch backlog commits, so fetch of the correct path
            # cannot overlap the backlog. Wait for a full drain, then pay
            # the redirect (flush + refill) penalty.
            if not self._drained():
                return False
            self._redirect_drain = False
            self._redirect_until = now + self.mispredict_penalty
            return True
        if now < self._redirect_until or len(self._ftq) >= self.ftq_capacity:
            return False
        # Metadata records are free; process them until a basic block, a
        # sync point or the end of the trace.
        while True:
            record = self.stream.peek()
            if isinstance(record, IpcRecord):
                self.stream.next()
                self.on_ipc(record.ipc)
                continue
            break
        record = self.stream.peek()
        if isinstance(record, BasicBlockRecord):
            self.stream.next()
            self._push_block(record, now)
            return True
        if isinstance(record, (SyncRecord, EndRecord)):
            if not self._drained():
                return False  # sync waits for the pipeline to drain
            if isinstance(record, EndRecord):
                self.context.finish(now)
                self.runtime.thread_finished(self.core_id, now)
                return True
            self.stream.next()
            self.stats.sync_events += 1
            self.runtime.deliver(self.core_id, record, now)
            return True
        raise SimulationError(
            f"core {self.core_id}: unhandled trace record {record!r}"
        )

    def _push_block(self, block: BasicBlockRecord, now: int) -> None:
        self.stats.blocks_fetched += 1
        entry = _FtqEntry()
        address = block.address
        end = block.end_address
        line = address & self._line_mask
        while line < end:
            line_end = line + self._line_bytes
            overlap_start = max(address, line)
            overlap_end = min(end, line_end)
            count = (overlap_end - overlap_start) // 4
            entry.pieces.append(_Piece(line=line, instructions=count))
            line = line_end
        self._ftq.append(entry)
        self._issue_pending = True
        correct = self.predictor.resolve(block.branch_address, block.branch)
        if not correct:
            self.stats.redirects += 1
            self._redirect_drain = True

    def _drained(self) -> bool:
        return not self._ftq and self.iq_space() >= self._iq_capacity_hint

    #: set by the system so _drained can detect an empty IQ
    _iq_capacity_hint: int = 1 << 30

    # -- stage 2: issue ------------------------------------------------------

    def _issue(self, now: int) -> bool:
        """One issue-stage cycle; returns whether the scan ran at all."""
        if not self._issue_pending or now < self._tlb_stall_until:
            return False
        examined = 0
        issued_request = False
        for entry in self._ftq:
            for piece in entry.pieces:
                if examined >= self.ISSUE_WINDOW:
                    # Unissued pieces may remain beyond the window; they
                    # enter it as earlier pieces extract.
                    return True
                examined += 1
                if piece.status is not PieceStatus.UNISSUED:
                    continue
                state = self.line_buffers.lookup(piece.line, count=not piece.counted)
                piece.counted = True
                if state is LookupState.HIT:
                    piece.status = PieceStatus.READY
                    continue
                if state is LookupState.PENDING:
                    piece.status = PieceStatus.WAITING
                    continue
                if issued_request:
                    return True  # one new request per cycle; rescan next cycle
                if self.itlb is not None:
                    walk_penalty = self.itlb.translate(piece.line)
                    if walk_penalty:
                        # Page walk before the fetch can go out; the piece
                        # stays unissued and the scan re-arms afterwards.
                        self._tlb_stall_until = now + walk_penalty
                        return True
                if not self.line_buffers.allocate(piece.line):
                    # No free outstanding-request slot: only a fill can
                    # unblock us, so stop rescanning until one arrives.
                    self._issue_pending = False
                    return True
                piece.request = self.port.request(piece.line, now)
                piece.status = PieceStatus.REQUESTED
                issued_request = True
        # Every piece currently in the FTQ has been dispositioned; a new
        # push or a fill re-arms the scan.
        self._issue_pending = False
        return True

    # -- stage 3: extract ----------------------------------------------------

    def _extract(self, now: int) -> bool:
        """One extract-stage cycle; returns whether anything moved."""
        if not self._ftq:
            return False
        entry = self._ftq[0]
        if not entry.pieces:
            self._ftq.popleft()
            return True
        piece = entry.pieces[0]
        if piece.status is not PieceStatus.READY:
            return False
        if self.iq_space() < piece.instructions:
            return False
        self.iq_push(piece.instructions)
        self._extracted_instructions += piece.instructions
        entry.pieces.popleft()
        if not entry.pieces:
            self._ftq.popleft()
        return True

    # -- completion callback --------------------------------------------------

    def on_fill(self, request: LineRequest) -> None:
        """Line arrived: fill the line buffer and wake matching pieces."""
        self.line_buffers.fill(request.line_address)
        self._issue_pending = True  # a buffer freed and a line became hot
        for entry in self._ftq:
            for piece in entry.pieces:
                if piece.line == request.line_address and piece.status in (
                    PieceStatus.REQUESTED,
                    PieceStatus.WAITING,
                ):
                    piece.status = PieceStatus.READY

    # -- ready/wake support -----------------------------------------------------

    def sleep_state(self, now: int) -> tuple[int | None, int]:
        """Whether (and until when) this front-end may leave the run list.

        Part of the scheduler's ready/wake contract
        (:class:`repro.engine.kernel.ScheduledComponent`, applied per
        core by :class:`repro.acmp.components.CoreScheduleState`).
        Returns ``(wake, space_needed)``:

        * ``wake is None`` — the front-end could act at ``now``; it must
          stay on the run list.
        * otherwise every step in ``[now, wake)`` is a no-op provided no
          line fill arrives and the instruction queue's free space stays
          below ``space_needed``; :data:`~repro.engine.NEVER` means only
          a fill (or runtime wake) can rouse it, a concrete cycle covers
          time-based stalls (redirect penalty, iTLB walk).
        * ``space_needed`` — the exact IQ room that would enable action
          before ``wake``: a ready head piece awaiting extraction space,
          or a sync/end record awaiting the queue's drain (space equal
          to the full capacity). 0 when no amount of room helps. The
          caller must wake the front-end at the first commit that grows
          :meth:`iq_space` to this threshold — the cycle a stepped run's
          front-end would first act on.

        While the queue is empty and the core sleeps as a unit, the
        certified window additionally pins :meth:`stall_cause` — it can
        only change when an in-flight request changes lifecycle state,
        which the ports report through their ``stall_listener``.
        """
        if self.context.state is not ThreadState.RUNNING:
            return (NEVER, 0)  # step() is a no-op until woken
        horizon = NEVER
        space_needed = 0
        # Extract: a ready head piece with IQ room would be consumed.
        if self._ftq:
            entry = self._ftq[0]
            if not entry.pieces:
                return (None, 0)  # the empty entry would be popped
            piece = entry.pieces[0]
            if piece.status is PieceStatus.READY:
                if self.iq_space() >= piece.instructions:
                    return (None, 0)
                space_needed = piece.instructions
        # Issue: an armed scan runs (and may mutate counters) unless an
        # iTLB walk holds it back until a known cycle.
        if self._issue_pending:
            if now >= self._tlb_stall_until:
                return (None, 0)
            if self._tlb_stall_until < horizon:
                horizon = self._tlb_stall_until
        # FTQ fill: mirror _fill_ftq's gating exactly.
        if self._redirect_drain:
            if self._drained():
                return (None, 0)  # the redirect penalty would start now
            if not self._ftq:
                # The drain completes once the IQ is empty again.
                space_needed = self._iq_capacity_hint
        elif now < self._redirect_until:
            if self._redirect_until < horizon:
                horizon = self._redirect_until
        elif len(self._ftq) < self.ftq_capacity:
            record = self.stream.peek()
            if isinstance(record, (SyncRecord, EndRecord)):
                if self._drained():
                    return (None, 0)  # the record would be consumed
                if not self._ftq:
                    space_needed = self._iq_capacity_hint
            else:
                return (None, 0)  # a record would be consumed this cycle
        return (horizon, space_needed)

    # -- redirect replay -------------------------------------------------------

    def redirect_replay_penalty(self) -> int | None:
        """Penalty length when the redirect trajectory is deterministic.

        The scheduler's redirect-replay window
        (:class:`repro.machine.components.CoreScheduleState`) may
        batch-settle this front-end across the whole drain + penalty
        span when the remaining trajectory is already decided: a
        mispredict drain is pending and the FTQ is empty, so no fills,
        extractions or trace records can intervene — the only action
        left before fetch resumes is the drain-complete transition
        itself, which :meth:`begin_redirect` replays. Returns the
        mispredict penalty in that state, ``None`` otherwise (the
        caller then falls back to the ordinary commit-replay window).
        """
        if (
            self._redirect_drain
            and not self._ftq
            and self.context.state is ThreadState.RUNNING
        ):
            return self.mispredict_penalty
        return None

    def begin_redirect(self, now: int) -> None:
        """Replay the drain-complete transition of a stepped cycle ``now``.

        Exactly what :meth:`_fill_ftq` does on the first cycle it
        observes a completed drain: clear the drain flag and start the
        redirect (flush + refill) penalty. The redirect-replay window
        calls this during settlement for the cycle after the batched
        drain commit, so fetch resumes at ``now + mispredict_penalty``
        — the same cycle a stepped run's would.
        """
        self._redirect_drain = False
        self._redirect_until = now + self.mispredict_penalty

    # -- stall attribution ------------------------------------------------------

    def stall_cause(self, now: int) -> str:
        """CPI-stack component to charge when the back-end starves."""
        if self.context.state is ThreadState.BLOCKED:
            return "sync"
        if self.context.state is ThreadState.FINISHED:
            return "finished"
        if not self._ftq:
            if self._redirect_drain or now < self._redirect_until:
                return "branch"
            return "other"
        entry = self._ftq[0]
        if not entry.pieces:
            return "other"
        piece = entry.pieces[0]
        if piece.status is PieceStatus.REQUESTED and piece.request is not None:
            return piece.request.stall_cause(now)
        if piece.status is PieceStatus.WAITING:
            return "icache_latency"
        if piece.status is PieceStatus.UNISSUED:
            return "icache_latency"
        return "other"

    @property
    def ftq_occupancy(self) -> int:
        return len(self._ftq)
