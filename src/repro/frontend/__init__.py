"""Decoupled core front-end: requests, I-cache ports, fetch engine."""

from repro.frontend.engine import FetchEngine, FetchStats, PieceStatus
from repro.frontend.ports import (
    PrivateIcachePort,
    SharedIcacheGroup,
    SharedPortView,
)
from repro.frontend.request import LineRequest, RequestState

__all__ = [
    "FetchEngine",
    "FetchStats",
    "PieceStatus",
    "PrivateIcachePort",
    "SharedIcacheGroup",
    "SharedPortView",
    "LineRequest",
    "RequestState",
]
