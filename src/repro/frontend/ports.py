"""I-cache ports: the private path and the shared bus + cache group.

Two implementations of the same duty — turn a line request into a future
line-buffer fill:

* :class:`PrivateIcachePort` (Fig. 5a): a 1-cycle private I-cache in front
  of the core's L2.
* :class:`SharedIcacheGroup` (Fig. 5b): a set of cores behind a single or
  double bus (Table I: 32 B wide, 2 cycles + contention, round-robin)
  sharing one I-cache, with MSHRs merging same-line misses across cores —
  the mechanism behind the paper's cross-thread mutual prefetching.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.cache.mshr import MshrFile
from repro.cache.set_assoc import SetAssociativeCache
from repro.engine import NEVER
from repro.errors import SimulationError
from repro.frontend.request import LineRequest, RequestState
from repro.interconnect.multibus import MultiBus
from repro.memory.hierarchy import InstructionHierarchy

#: Callback invoked when a request's line lands in the core's line buffer.
FillCallback = Callable[[LineRequest], None]
#: Scheduler hook: schedule(cycle, callback) runs the callback at `cycle`.
Scheduler = Callable[[int, Callable[[], None]], None]
#: Ready/wake hook: wake_listener(core_id) returns a sleeping core's
#: components to the kernel's run list (fill completions).
WakeListener = Callable[[int], None]
#: Accounting hook: stall_listener(core_id, cycle) tells a sleeping
#: core that its in-flight request changed lifecycle state at `cycle`,
#: so batched stall attribution must settle the old cause up to there.
StallListener = Callable[[int, int], None]


class PrivateIcachePort:
    """Baseline path: a private I-cache with a fixed access latency."""

    def __init__(
        self,
        core_id: int,
        cache: SetAssociativeCache,
        hierarchy: InstructionHierarchy,
        scheduler: Scheduler,
        on_fill: FillCallback,
        latency: int = 1,
    ) -> None:
        self.core_id = core_id
        self.cache = cache
        self.hierarchy = hierarchy
        self._schedule = scheduler
        self._on_fill = on_fill
        self.latency = latency
        #: Set by the system assembly when running under the scheduler.
        self.wake_listener: WakeListener | None = None

    def request(self, line_address: int, now: int) -> LineRequest:
        """Issue a fetch; the fill callback fires at the completion cycle."""
        request = LineRequest(self.core_id, line_address, issued_at=now)
        hit = self.cache.lookup(line_address)
        request.arrival_at = now
        request.icache_hit = hit
        if hit:
            request.state = RequestState.CACHE
            request.completion_at = now + self.latency
        else:
            request.state = RequestState.MISS
            miss = self.hierarchy.fetch_line(line_address, now + self.latency)
            request.completion_at = miss.completion_cycle
            line = line_address
            self._schedule(
                request.completion_at, lambda: self.cache.fill(line)
            )
        self._schedule(request.completion_at, lambda: self._complete(request))
        return request

    def _complete(self, request: LineRequest) -> None:
        request.state = RequestState.DONE
        self._on_fill(request)
        if self.wake_listener is not None:
            self.wake_listener(self.core_id)


class SharedIcacheGroup:
    """A group of cores sharing one I-cache behind an I-interconnect.

    The group owns the multi-bus (single or double, Section VI-B), the
    shared cache, its MSHRs and the L2 hierarchy behind it. It must be
    stepped once per cycle by the system simulator.
    """

    def __init__(
        self,
        core_ids: list[int],
        cache: SetAssociativeCache,
        hierarchy: InstructionHierarchy,
        interconnect: MultiBus,
        scheduler: Scheduler,
        fill_callbacks: dict[int, FillCallback],
        icache_latency: int = 1,
        mshr_capacity: int = 16,
    ) -> None:
        if interconnect.requester_count != len(core_ids):
            raise SimulationError(
                f"interconnect has {interconnect.requester_count} ports for "
                f"{len(core_ids)} cores"
            )
        self.core_ids = list(core_ids)
        self._slot_of = {core: slot for slot, core in enumerate(core_ids)}
        self.cache = cache
        self.hierarchy = hierarchy
        self.interconnect = interconnect
        self._schedule = scheduler
        self._fill_callbacks = fill_callbacks
        self.icache_latency = icache_latency
        self.mshrs = MshrFile(mshr_capacity)
        #: Ready/wake hooks, set by the system assembly when running
        #: under the scheduler (all optional; None = polled operation).
        self.wake_listener: WakeListener | None = None
        self.stall_listener: StallListener | None = None
        #: Fired whenever a new request enters the interconnect, so the
        #: kernel can return an idle (deregistered) interconnect
        #: component to the run list for same-cycle arbitration.
        self.activity_listener: Callable[[], None] | None = None

    def request(self, line_address: int, now: int, core_id: int) -> LineRequest:
        """Queue a fetch on the I-interconnect for arbitration."""
        request = LineRequest(core_id, line_address, issued_at=now)
        self._enqueue(self._slot_of[core_id], line_address, now, request)
        return request

    def _enqueue(
        self, slot: int, line_address: int, now: int, request: LineRequest
    ) -> None:
        self.interconnect.request(slot, line_address, now, meta=request)
        if self.activity_listener is not None:
            self.activity_listener()

    def port_for(self, core_id: int) -> "SharedPortView":
        """A per-core facade matching the private port's request signature."""
        return SharedPortView(self, core_id)

    def step(self, now: int) -> None:
        """Arbitrate the buses and process this cycle's grants."""
        for granted in self.interconnect.step(now):
            request = granted.meta
            if not isinstance(request, LineRequest):
                raise SimulationError("bus grant without an attached LineRequest")
            request.granted_at = now
            request.state = RequestState.ON_BUS
            arrival = now + self.interconnect.latency
            request.arrival_at = arrival
            self._schedule(arrival, lambda r=request: self._access_cache(r))
            if self.stall_listener is not None:
                # The wait cause flips from bus congestion to bus
                # latency: settle a sleeping core's attribution.
                self.stall_listener(request.core_id, now)

    def _access_cache(self, request: LineRequest) -> None:
        now = request.arrival_at
        assert now is not None
        line = request.line_address
        try:
            if self.mshrs.outstanding(line):
                # A miss for this line is already in flight (another core's
                # fetch): merge — mutual prefetching in action. The secondary
                # request is a hit-under-miss: it does not re-read L2, and it
                # is not counted as an additional I-cache miss.
                request.state = RequestState.MISS
                request.icache_hit = False
                self.cache.stats.record_hit()
                self.mshrs.request(line, request)
                return
            hit = self.cache.lookup(line)
            request.icache_hit = hit
            if hit:
                request.state = RequestState.CACHE
                request.completion_at = now + self.icache_latency
                self._schedule(
                    request.completion_at, lambda: self._complete(request)
                )
                return
            request.state = RequestState.MISS
            outcome = self.mshrs.request(line, request)
            if outcome == "full":
                # No MSHR free: the request must re-arbitrate later. Model
                # the retry as a fixed back-off before re-queuing on the bus.
                slot = self._slot_of[request.core_id]
                self._schedule(
                    now + 2,
                    lambda: self._enqueue(slot, line, now + 2, request),
                )
                request.state = RequestState.QUEUED
                return
            miss = self.hierarchy.fetch_line(line, now + self.icache_latency)
            done = miss.completion_cycle
            self._schedule(done, lambda: self._fill_line(line, done))
        finally:
            # Whatever lifecycle state the access resolved to, a sleeping
            # core's stall attribution must settle at this boundary.
            if self.stall_listener is not None:
                self.stall_listener(request.core_id, now)

    def _fill_line(self, line: int, now: int) -> None:
        self.cache.fill(line)
        for waiter in self.mshrs.complete(line):
            if isinstance(waiter, LineRequest):
                waiter.completion_at = now
                self._complete(waiter)

    def _complete(self, request: LineRequest) -> None:
        request.state = RequestState.DONE
        callback = self._fill_callbacks[request.core_id]
        callback(request)
        if self.wake_listener is not None:
            self.wake_listener(request.core_id)

    def flush_core(self, core_id: int) -> int:
        """Drop a core's not-yet-granted bus requests (redirect flush)."""
        return self.interconnect.flush_requester(self._slot_of[core_id])

    def idle_at(self, cycle: int) -> bool:
        """True when stepping the group at ``cycle`` is provably a no-op.

        All in-flight work past the bus (cache accesses, L2/DRAM misses,
        MSHR completions) lives in the kernel's event queue, so only the
        interconnect needs per-cycle stepping.
        """
        return self.interconnect.idle_at(cycle)

    def wake_horizon(self, cycle: int) -> int | None:
        """Sleep plan for the group's interconnect component.

        ``None`` keeps the component on the run list (a grant is
        possible at ``cycle``); a later cycle promises no grant before
        it (the earliest queued request's bus-busy horizon); ``NEVER``
        (no queued request) sleeps until the activity listener fires.
        Busy cycles elided while asleep are recovered by
        :meth:`settle_busy`.
        """
        horizon = self.interconnect.grant_horizon(cycle)
        if horizon is None:
            return NEVER
        if horizon <= cycle:
            return None
        return horizon

    def settle_busy(self, upto: int) -> int:
        """Batch-charge busy cycles the sleeping component never stepped."""
        return self.interconnect.settle_busy(upto)


class SharedPortView:
    """Adapter giving one core the private-port request interface."""

    def __init__(self, group: SharedIcacheGroup, core_id: int) -> None:
        self._group = group
        self.core_id = core_id
        self.cache = group.cache

    def request(self, line_address: int, now: int) -> LineRequest:
        return self._group.request(line_address, now, self.core_id)
