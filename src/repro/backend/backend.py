"""Commit-rate back-end (Section V-A).

"Each cycle, the back-end attempts to commit up to a given number of
instructions (commit rate) from its instruction queue." The commit rate is
the IPC measured with performance counters for the current code section,
injected into the traces as IPC records; modelling the back-end this way
isolates the front-end study from back-end design artefacts, exactly as
the paper does.

Fractional IPC values are honoured through a commit-credit accumulator:
an IPC of 0.6 yields three committed instructions every five cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels
from repro.errors import SimulationError
from repro.utils import require_positive

#: Compiled credit-trajectory walk, or None on the pure-Python backend —
#: the planning/settlement methods below then keep their inline loops.
#: One entry point serves all four walks (see repro.kernels.pylib).
_native_replay = kernels.replay_walk if kernels.NATIVE else None
_REPLAY_NEXT = kernels.REPLAY_NEXT
_REPLAY_HORIZON = kernels.REPLAY_HORIZON
_REPLAY_DRAIN = kernels.REPLAY_DRAIN
_REPLAY_STEPS = kernels.REPLAY_STEPS

#: Stall categories reported in the CPI stack (Fig. 8).
STALL_CAUSES = (
    "branch",
    "ibus_latency",
    "ibus_congestion",
    "icache_latency",
    "memory",
    "sync",
    "other",
)


@dataclass
class CommitStats:
    """Back-end accounting for one core."""

    committed: int = 0
    base_cycles: int = 0
    stall_cycles: dict[str, int] = field(
        default_factory=lambda: {cause: 0 for cause in STALL_CAUSES}
    )

    @property
    def total_stall_cycles(self) -> int:
        return sum(self.stall_cycles.values())

    @property
    def active_cycles(self) -> int:
        return self.base_cycles + self.total_stall_cycles

    def cpi(self) -> float:
        if self.committed == 0:
            return 0.0
        return self.active_cycles / self.committed


class CommitEngine:
    """Instruction queue + commit logic for one core."""

    def __init__(self, iq_capacity: int = 64, initial_ipc: float = 1.0) -> None:
        require_positive(iq_capacity, "iq_capacity")
        require_positive(initial_ipc, "initial_ipc")
        self.iq_capacity = iq_capacity
        self._iq_count = 0
        self._ipc = initial_ipc
        self._credit = 0.0
        self.stats = CommitStats()
        #: Compiled trajectory walks taken (0 on the pure-Python
        #: backend); surfaced through the kernel stats so the bench can
        #: assert the fast path engages.
        self.replay_walk_engaged = 0

    # -- instruction queue --------------------------------------------------

    @property
    def iq_count(self) -> int:
        return self._iq_count

    def iq_space(self) -> int:
        return self.iq_capacity - self._iq_count

    def iq_push(self, instructions: int) -> None:
        if instructions < 0:
            raise SimulationError(f"cannot push {instructions} instructions")
        if self._iq_count + instructions > self.iq_capacity:
            raise SimulationError(
                f"instruction queue overflow: {self._iq_count}+{instructions} "
                f"> {self.iq_capacity}"
            )
        self._iq_count += instructions

    # -- commit rate --------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self._ipc

    def set_ipc(self, ipc: float) -> None:
        """Retarget the commit rate (an IPC record in the trace)."""
        require_positive(ipc, "ipc")
        self._ipc = ipc

    # -- per-cycle step -------------------------------------------------------

    def step(self, now: int, stall_cause) -> int:
        """Attempt one commit cycle; return instructions committed.

        Args:
            stall_cause: the front-end's attribution, charged when the
                queue cannot cover an earned commit credit. Either the
                cause string itself, or a ``callable(now) -> str`` that
                is only invoked on a stall — committing cycles (the
                common case) then skip the attribution walk entirely.
        """
        self._credit += self._ipc
        commit = min(int(self._credit), self._iq_count)
        if commit > 0:
            self._iq_count -= commit
            self._credit -= commit
            self.stats.committed += commit
            self.stats.base_cycles += 1
            # Leftover credit beyond one cycle's worth does not bank: the
            # back-end cannot commit more than its width later.
            self._credit = min(self._credit, self._ipc)
            return commit
        if self._credit >= 1.0:
            # Earned a commit slot but had nothing to commit: a stall.
            if callable(stall_cause):
                stall_cause = stall_cause(now)
            if stall_cause == "finished":
                self.stats.base_cycles += 1
            else:
                cause = stall_cause if stall_cause in self.stats.stall_cycles else "other"
                self.stats.stall_cycles[cause] += 1
            self._credit = min(self._credit, max(1.0, self._ipc))
            return 0
        # Sub-unit IPC pacing: not a stall, the back-end is simply narrow.
        self.stats.base_cycles += 1
        return 0

    def cycles_to_next_commit(self, cap: int = 4096) -> int | None:
        """Cycles until :meth:`step` would next commit, absent pushes.

        The scheduler's commit-pacing horizon: with a non-empty queue
        and a sub-unit IPC, the back-end only acts on the cycle its
        accumulated credit crosses 1.0; every cycle before that is pure
        pacing (see :meth:`pacing_steps`). The crossing is found by
        replaying the same float additions ``step`` performs, because
        ``credit + k * ipc`` and ``k`` repeated additions round
        differently.

        Returns ``None`` when the queue is empty, or when no commit
        occurs within ``cap`` cycles (the caller then simply keeps the
        back-end on the run list).
        """
        if self._iq_count == 0:
            return None
        if _native_replay is not None:
            self.replay_walk_engaged += 1
            ahead = _native_replay(
                _REPLAY_NEXT, self._credit, self._ipc, self._iq_count,
                cap, -1,
            )
            return ahead if ahead else None
        credit = self._credit
        ipc = self._ipc
        for ahead in range(1, cap + 1):
            credit += ipc
            if credit >= 1.0:
                return ahead
        return None

    def replay_horizon(self, space_needed: int = 0, cap: int = 4096) -> int | None:
        """Relative wake cycle bounding a commit-replay window.

        The scheduler's commit-replay lever: with a non-empty queue and
        a quiescent front-end (no pushes, no IPC retargets), every
        coming back-end cycle is either a commit or sub-unit pacing —
        never a stall — until the queue drains, so the whole span can be
        settled in one batch (:meth:`replay_steps`). This walks the same
        float credit trajectory :meth:`step` would produce and returns
        ``r`` such that every cycle in ``[now + 1, now + r)`` is
        replayable and the caller must wake at ``now + r`` at the
        latest:

        * the cycle after the queue drains (the next cycle would charge
          a stall, which needs live attribution);
        * the cycle a front-end waiting for ``space_needed`` free queue
          slots would first act — one cycle after the commit that frees
          the room, exactly when a live back-end would have woken it;
        * ``cap`` cycles out, when neither bound is reached first (the
          caller then simply re-plans on wake).

        Returns ``None`` when the queue is empty (no commit stream to
        replay; the idle-window machinery owns that case).
        """
        iq = self._iq_count
        if iq == 0:
            return None
        space_limit = self.iq_capacity - space_needed if space_needed else -1
        if _native_replay is not None:
            self.replay_walk_engaged += 1
            return _native_replay(
                _REPLAY_HORIZON, self._credit, self._ipc, iq, cap,
                space_limit,
            )
        credit = self._credit
        ipc = self._ipc
        for ahead in range(1, cap + 1):
            credit += ipc
            commit = min(int(credit), iq)
            if commit:
                iq -= commit
                credit = min(credit - commit, ipc)
                if iq <= space_limit or iq == 0:
                    return ahead + 1
        return cap

    def drain_horizon(self, cap: int = 4096) -> int | None:
        """Relative cycle of the commit that empties the queue.

        The scheduler's redirect-replay lever: a front-end stalled on a
        mispredict drain cannot push, so the queue's remaining commit
        trajectory is fully deterministic and the exact drain cycle can
        be planned ahead. This walks the same float credit trajectory
        :meth:`step` would produce and returns ``d`` such that the
        queue's last instructions commit at ``now + d`` (every cycle in
        ``[now + 1, now + d]`` is a commit or sub-unit pacing step,
        replayable by :meth:`replay_steps`).

        Returns ``None`` when the queue is already empty, or when it
        does not drain within ``cap`` cycles — unlike
        :meth:`replay_horizon`'s capped return, the caller needs an
        unambiguous drain point to anchor the redirect penalty to.
        """
        iq = self._iq_count
        if iq == 0:
            return None
        if _native_replay is not None:
            self.replay_walk_engaged += 1
            drain = _native_replay(
                _REPLAY_DRAIN, self._credit, self._ipc, iq, cap, -1,
            )
            return drain if drain else None
        credit = self._credit
        ipc = self._ipc
        for ahead in range(1, cap + 1):
            credit += ipc
            commit = min(int(credit), iq)
            if commit:
                iq -= commit
                credit = min(credit - commit, ipc)
                if iq == 0:
                    return ahead
        return None

    def replay_steps(self, cycles: int) -> tuple[int, int | None]:
        """Replay ``cycles`` consecutive commit/pacing steps at once.

        Equivalent to calling :meth:`step` ``cycles`` times while the
        queue stays non-empty: identical committed counts, base cycles
        and final commit-credit value (including float behaviour), so a
        batched settlement is bit-identical to a stepped run. The caller
        (the scheduler's commit-replay window) guarantees the window
        ends no later than one cycle past the drain; a stall cycle in
        the span means the window was mis-sized and the run would
        diverge from a stepped one.

        Returns ``(committed, last_commit_offset)`` where the offset is
        the 1-based position of the last committing cycle within the
        replayed span (``None`` when the span was pure pacing) — the
        watchdog needs the exact cycle progress was last made.
        """
        if _native_replay is not None:
            self.replay_walk_engaged += 1
            committed_total, base_cycles, last_commit, iq, credit, stalled = (
                _native_replay(
                    _REPLAY_STEPS, self._credit, self._ipc, self._iq_count,
                    cycles, -1,
                )
            )
            # The walk stops on a stall with the prefix state applied —
            # the stall cycle's credit earned, no base cycle charged —
            # exactly the state the stepped loop below raises from.
            self._iq_count = iq
            self._credit = credit
            self.stats.committed += committed_total
            self.stats.base_cycles += base_cycles
            if stalled:
                raise SimulationError(
                    "commit-replay window crossed a stall boundary"
                )
            return committed_total, last_commit if last_commit else None
        committed_total = 0
        last_commit = None
        for offset in range(1, cycles + 1):
            self._credit += self._ipc
            commit = min(int(self._credit), self._iq_count)
            if commit > 0:
                self._iq_count -= commit
                self._credit -= commit
                self.stats.committed += commit
                self.stats.base_cycles += 1
                self._credit = min(self._credit, self._ipc)
                committed_total += commit
                last_commit = offset
            elif self._credit >= 1.0:
                raise SimulationError(
                    "commit-replay window crossed a stall boundary"
                )
            else:
                self.stats.base_cycles += 1
        return committed_total, last_commit

    def pacing_steps(self, cycles: int) -> None:
        """Replay ``cycles`` sub-unit pacing steps at once.

        Equivalent to calling :meth:`step` ``cycles`` times while the
        queue is non-empty and the commit credit stays below 1.0: each
        such cycle accrues one base cycle and one IPC's worth of
        credit, nothing else. The caller (the scheduler's commit-pacing
        window) guarantees the window ends strictly before the next
        commit; crossing the boundary here means the window was
        mis-sized and the run would diverge from a stepped one.
        """
        if self._iq_count == 0:
            raise SimulationError("pacing_steps requires a non-empty queue")
        for _ in range(cycles):
            self._credit += self._ipc
            if self._credit >= 1.0:
                raise SimulationError(
                    "pacing window crossed a commit boundary"
                )
            self.stats.base_cycles += 1

    def idle_steps(self, cycles: int, stall_cause: str) -> None:
        """Account ``cycles`` consecutive :meth:`step` calls at once.

        The kernel's cycle-skipping fast path uses this instead of
        stepping an empty back-end cycle by cycle. The contract is exact
        equivalence with calling ``step(_, stall_cause)`` ``cycles``
        times while the instruction queue is empty: the same stall/base
        cycle counts and the same final commit-credit value (including
        float behaviour), so a skipped run is bit-identical to a stepped
        one.
        """
        if cycles <= 0:
            return
        if self._iq_count:
            raise SimulationError(
                "idle_steps requires an empty instruction queue "
                f"(have {self._iq_count})"
            )
        remaining = cycles
        # Warm-up: sub-unit pacing cycles until one commit credit is
        # earned. Replays step()'s repeated addition so the float credit
        # trajectory is identical.
        while remaining and self._credit + self._ipc < 1.0:
            self._credit += self._ipc
            self.stats.base_cycles += 1
            remaining -= 1
        if not remaining:
            return
        # Every remaining cycle earns a credit it cannot spend: step()
        # charges one stall cycle and clamps the credit. After the first
        # such cycle the credit is pinned at the clamp value exactly.
        cap = max(1.0, self._ipc)
        self._credit = min(self._credit + self._ipc, cap)
        if remaining > 1:
            self._credit = cap
        if stall_cause == "finished":
            self.stats.base_cycles += remaining
        else:
            cause = (
                stall_cause
                if stall_cause in self.stats.stall_cycles
                else "other"
            )
            self.stats.stall_cycles[cause] += remaining
