"""Commit-rate back-end model."""

from repro.backend.backend import STALL_CAUSES, CommitEngine, CommitStats

__all__ = ["STALL_CAUSES", "CommitEngine", "CommitStats"]
