"""The simulation main loop with a cycle-skipping fast path.

:class:`SimulationKernel` owns the :class:`~repro.engine.clock.Clock`,
the :class:`~repro.engine.events.EventQueue` and an ordered list of
components. Per simulated cycle it:

1. checks the registered finish condition;
2. delivers every event due at the current cycle;
3. steps each component in registration order, summing the progress
   units (committed instructions) they report;
4. arms the deadlock watchdog when no progress was made.

**Cycle skipping.** After a cycle with zero progress the kernel asks
every component for a *skip horizon*: the earliest future cycle at which
stepping it could do anything, assuming no event fires first. ``None``
means "I could act right now" and vetoes the skip; :data:`NEVER` means
"only an event can wake me". When no component vetoes, the clock jumps
straight to the earliest of the horizons, the next scheduled event and
the deadlock watchdog's firing cycle, and each component's ``on_skip``
charges the skipped cycles to its idle accounting (stall buckets). The
contract is exact equivalence: a run with skipping enabled must produce
bit-identical results to the same run stepped cycle by cycle.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.engine.clock import Clock
from repro.engine.events import EventQueue
from repro.errors import DeadlockError, SimulationError

#: Skip-horizon sentinel: "nothing but an event can wake this component".
NEVER = 1 << 62

#: Cycles without any progress before declaring a deadlock (the same
#: window the seed engine used).
DEFAULT_STALL_LIMIT = 200_000


@runtime_checkable
class Steppable(Protocol):
    """Anything the kernel can step once per simulated cycle."""

    def step(self, now: int) -> int | None:
        """Advance one cycle; return progress units made (or None)."""


class KernelComponent(Steppable, Protocol):
    """A steppable that also supports the cycle-skipping fast path."""

    def skip_horizon(self, now: int) -> int | None:
        """Earliest cycle >= ``now`` at which :meth:`step` could act.

        Return ``None`` to veto skipping (the component could act at
        ``now``), :data:`NEVER` when only a scheduled event can wake it,
        or a concrete cycle for time-based wake-ups (redirect penalties,
        TLB walks).
        """

    def on_skip(self, start: int, cycles: int) -> None:
        """Account ``cycles`` skipped idle cycles starting at ``start``."""


@dataclass
class KernelStats:
    """Main-loop accounting, exposed for benchmarks and tests."""

    cycles_executed: int = 0
    cycles_skipped: int = 0
    skips: int = 0
    events_run: int = 0

    @property
    def total_cycles(self) -> int:
        return self.cycles_executed + self.cycles_skipped


class SimulationKernel:
    """Runs registered components to completion over a shared clock."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        events: EventQueue | None = None,
        stall_limit: int = DEFAULT_STALL_LIMIT,
        cycle_skip: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.events = events if events is not None else EventQueue()
        self.stall_limit = stall_limit
        self.cycle_skip = cycle_skip
        self.stats = KernelStats()
        self._components: list[Steppable] = []
        self._finished: Callable[[], bool] = lambda: False
        self._describe: Callable[[], str] | None = None
        self._deadlock_detail: Callable[[int], str] | None = None
        self._last_progress = 0

    # -- wiring ------------------------------------------------------------

    def register(self, component: Steppable) -> None:
        """Add a component; step order is registration order."""
        self._components.append(component)

    def set_finish_condition(self, finished: Callable[[], bool]) -> None:
        """Install the predicate that ends the run (checked per cycle)."""
        self._finished = finished

    def set_describe(self, describe: Callable[[], str]) -> None:
        """Install a context string factory used in error messages."""
        self._describe = describe

    def set_deadlock_detail(self, detail: Callable[[int], str]) -> None:
        """Install extra diagnostic text for deadlock errors."""
        self._deadlock_detail = detail

    # -- main loop ---------------------------------------------------------

    def run(self, max_cycles: int = 500_000_000) -> int:
        """Simulate until the finish condition holds; return that cycle.

        Raises:
            DeadlockError: when no component reports progress for
                ``stall_limit`` cycles while the run is unfinished.
            SimulationError: when ``max_cycles`` elapse first.
        """
        clock = self.clock
        events = self.events
        components = self._components
        stats = self.stats
        while clock.now < max_cycles:
            now = clock.now
            if self._finished():
                return now
            stats.events_run += events.run_due(now)
            progress = 0
            for component in components:
                progress += component.step(now) or 0
            stats.cycles_executed += 1
            if progress:
                self._last_progress = now
            elif now - self._last_progress > self.stall_limit:
                self._raise_deadlock(now)
            clock.advance()
            if self.cycle_skip and not progress:
                self._try_skip()
        suffix = f" for {self._describe()}" if self._describe else ""
        raise SimulationError(
            f"simulation exceeded max_cycles={max_cycles}{suffix}"
        )

    # -- cycle skipping ----------------------------------------------------

    def _try_skip(self) -> None:
        """Jump the clock over provably idle cycles, charging them."""
        if self._finished():
            return
        now = self.clock.now
        next_event = self.events.next_cycle
        horizon = NEVER if next_event is None else next_event
        for component in self._components:
            probe = getattr(component, "skip_horizon", None)
            if probe is None:
                return
            component_horizon = probe(now)
            if component_horizon is None:
                return
            if component_horizon < horizon:
                horizon = component_horizon
        # Never jump past the cycle at which the watchdog would fire: a
        # genuinely dead machine must raise at the same cycle it would
        # have when stepped cycle by cycle.
        watchdog_cycle = self._last_progress + self.stall_limit + 1
        if watchdog_cycle < horizon:
            horizon = watchdog_cycle
        if horizon <= now:
            return
        cycles = horizon - now
        for component in self._components:
            component.on_skip(now, cycles)
        self.clock.jump(horizon)
        self.stats.skips += 1
        self.stats.cycles_skipped += cycles

    # -- diagnostics -------------------------------------------------------

    def _raise_deadlock(self, now: int) -> None:
        context = f" ({self._describe()})" if self._describe else ""
        detail = (
            f": {self._deadlock_detail(now)}" if self._deadlock_detail else ""
        )
        raise DeadlockError(
            f"no instruction committed for {self.stall_limit} cycles at "
            f"cycle {now}{context}{detail}"
        )
