"""The simulation main loop: an event-driven ready/wake scheduler.

:class:`SimulationKernel` owns the :class:`~repro.engine.clock.Clock`,
the :class:`~repro.engine.events.EventQueue` and an ordered list of
components. Components are held in a *ready set*; per simulated cycle
the kernel:

1. wakes every component whose armed cycle timer is due;
2. checks the registered finish condition;
3. delivers every event due at the current cycle (event callbacks may
   wake sleeping components);
4. steps each **ready** component in registration order, summing the
   progress units (committed instructions) they report;
5. asks each ready component for a *sleep plan* and deregisters the
   ones that certify quiescence;
6. arms the deadlock watchdog when no progress was made.

**Sleeping and waking.** A component that cannot act — a front-end
waiting on a line fill, a back-end with an empty instruction queue, an
idle interconnect, a core blocked on synchronisation — returns a plan
from :meth:`ScheduledComponent.sleep_plan`: a concrete wake-up cycle
(redirect penalty, iTLB walk, commit pacing) arms a cycle timer;
:data:`NEVER` means only an explicit :meth:`SimulationKernel.wake` (a
fill completion, a barrier release) can rouse it. While asleep, a
component is simply not on the run list; ``on_sleep``/``on_wake``
bracket the nap so the component can batch-account the cycles it was
never stepped for.

**Clock jumping.** When the ready set is empty, nothing can change
until the next wake-up: the clock jumps straight to the earliest of the
next scheduled event, the earliest armed timer and the deadlock
watchdog's firing cycle. This is the degenerate case of the scheduler —
the old "every component idle" global gate — and no longer requires the
whole machine to quiesce at once for per-component work to be elided.

The contract is exact equivalence: a scheduled run must produce
bit-identical results to the same run stepped cycle by cycle with
``cycle_skip=False``, including :class:`DeadlockError` firing at the
same cycle. A component not in the ready set must therefore be a
provable no-op for every elided cycle (modulo the batched accounting it
performs in ``on_wake``).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.engine.clock import Clock
from repro.engine.events import EventQueue
from repro.errors import DeadlockError, SimulationError
from repro.obs.recorder import tracer as _active_tracer
from repro.obs.timeline import SIM_PID

#: Sleep-plan sentinel: "nothing but an explicit wake can rouse me".
NEVER = 1 << 62

#: Cycles without any progress before declaring a deadlock (the same
#: window the seed engine used).
DEFAULT_STALL_LIMIT = 200_000

#: Shortest timer nap worth deregistering for. Below this, the
#: bookkeeping (heap entries, wake transitions, re-planning) costs more
#: than the steps it elides, so the component simply stays on the run
#: list — always equivalent, since a ready component that cannot act
#: steps as a no-op exactly like the reference engine. Event-only
#: (:data:`NEVER`) sleeps are exempt: their naps are unbounded.
MIN_TIMER_NAP = 4


@runtime_checkable
class Steppable(Protocol):
    """Anything the kernel can step once per simulated cycle."""

    def step(self, now: int) -> int | None:
        """Advance one cycle; return progress units made (or None)."""


class ScheduledComponent(Steppable, Protocol):
    """A steppable that participates in the ready/wake scheduler.

    The contract, checked end to end by the equivalence suite:

    * ``sleep_plan(now)`` is asked after the component stepped at
      ``now``. Returning ``None`` keeps it on the run list. Returning a
      cycle ``w > now + 1`` promises that stepping it anywhere in
      ``[now + 1, w)`` would be a no-op provided no wake arrives first;
      the kernel arms a timer at ``w``. Returning :data:`NEVER` promises
      the same for every future cycle until an explicit wake.
    * ``on_sleep(now)`` is called when the kernel deregisters the
      component (its nap covers cycles from ``now + 1``).
    * ``on_wake(now)`` is called when the component re-enters the ready
      set — by timer or by :meth:`SimulationKernel.wake` — before any
      component steps at ``now``. This is where elided cycles are
      batch-accounted so results match a stepped run bit for bit.

    A component may also be registered with only :meth:`step`; it then
    stays on the run list forever (and vetoes clock jumps), which is
    always correct, just slower.
    """

    def sleep_plan(self, now: int) -> int | None:
        """Earliest cycle at which :meth:`step` could act again."""

    def on_sleep(self, now: int) -> None:
        """The kernel deregistered this component at the end of ``now``."""

    def on_wake(self, now: int) -> None:
        """The component re-enters the ready set at ``now``."""


@dataclass
class KernelStats:
    """Main-loop accounting, exposed for benchmarks and tests."""

    cycles_executed: int = 0
    cycles_skipped: int = 0
    skips: int = 0
    events_run: int = 0
    #: Component step() calls actually made.
    component_steps: int = 0
    #: Step() calls elided on executed cycles because the component was
    #: asleep (cycles jumped over are counted in ``cycles_skipped``).
    component_steps_avoided: int = 0
    #: Transitions from asleep back into the ready set.
    wakes: int = 0
    #: Interconnect busy-only steps replaced by one batched settlement
    #: (a sleeping interconnect component charging a whole transfer
    #: window at once); aggregated by the simulator after the run.
    interconnect_busy_batched: int = 0
    #: Back-end commit/pacing steps replaced by one batched commit
    #: replay (a sleeping back-end settling a whole deterministic
    #: commit window at once); aggregated by the simulator after the run.
    commit_cycles_batched: int = 0
    #: Redirect-penalty stall cycles replaced by one batched redirect
    #: replay (a core sleeping across a mispredict drain + penalty and
    #: settling the whole span at the fetch-resume cycle); aggregated
    #: by the simulator after the run.
    redirect_cycles_batched: int = 0
    #: Commit-trajectory walks (planning + settlement) taken by the
    #: compiled ``replay_walk`` kernel instead of the interpreted loop;
    #: 0 on the pure-Python backend. Aggregated by the simulator after
    #: the run.
    replay_walk_engaged: int = 0

    @property
    def total_cycles(self) -> int:
        return self.cycles_executed + self.cycles_skipped

    @property
    def skipped_fraction(self) -> float:
        """Share of simulated cycles covered by clock jumps."""
        total = self.total_cycles
        return self.cycles_skipped / total if total else 0.0


class SimulationKernel:
    """Runs registered components to completion over a shared clock."""

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        events: EventQueue | None = None,
        stall_limit: int = DEFAULT_STALL_LIMIT,
        cycle_skip: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.events = events if events is not None else EventQueue()
        self.stall_limit = stall_limit
        #: True runs the ready/wake scheduler; False steps every
        #: component every cycle (the bit-identical reference engine).
        self.cycle_skip = cycle_skip
        self.stats = KernelStats()
        self._components: list[Steppable] = []
        self._ready: list[bool] = []
        self._gen: list[int] = []
        self._plans: list[Callable[[int], int | None] | None] = []
        self._on_sleep: list[Callable[[int], None] | None] = []
        self._on_wake: list[Callable[[int], None] | None] = []
        self._index_of: dict[int, int] = {}
        self._timers: list[tuple[int, int, int]] = []  # (cycle, index, gen)
        self._ready_count = 0
        self._finished: Callable[[], bool] = lambda: False
        self._describe: Callable[[], str] | None = None
        self._deadlock_detail: Callable[[int], str] | None = None
        self._last_progress = 0
        # Timeline tracing: grabbed once at construction so a disabled
        # recorder costs exactly one None check on the wake/sleep/jump
        # paths (never inside the per-cycle step loop).
        self.tracer = _active_tracer()
        self._nap_from: list[int] = []
        self._ts_base = self.tracer.cycle_offset if self.tracer else 0
        if self.tracer is not None:
            self.tracer.set_thread_name(SIM_PID, 0, "kernel")

    # -- wiring ------------------------------------------------------------

    def register(self, component: Steppable) -> None:
        """Add a component; step order is registration order."""
        index = len(self._components)
        self._components.append(component)
        self._ready.append(True)
        self._gen.append(0)
        self._plans.append(getattr(component, "sleep_plan", None))
        self._on_sleep.append(getattr(component, "on_sleep", None))
        self._on_wake.append(getattr(component, "on_wake", None))
        self._index_of[id(component)] = index
        self._ready_count += 1
        self._nap_from.append(-1)
        if self.tracer is not None:
            self.tracer.set_thread_name(
                SIM_PID, index + 1, f"{index}:{type(component).__name__}"
            )

    def set_finish_condition(self, finished: Callable[[], bool]) -> None:
        """Install the predicate that ends the run (checked per cycle)."""
        self._finished = finished

    def set_describe(self, describe: Callable[[], str]) -> None:
        """Install a context string factory used in error messages."""
        self._describe = describe

    def set_deadlock_detail(self, detail: Callable[[int], str]) -> None:
        """Install extra diagnostic text for deadlock errors."""
        self._deadlock_detail = detail

    # -- wake API ----------------------------------------------------------

    def wake(self, component: Steppable) -> None:
        """Return a sleeping component to the ready set.

        Safe to call for a component that is already ready (no-op). The
        component's ``on_wake`` runs before it is next stepped, so it
        can settle any batched accounting for the cycles it slept.
        Waking is always allowed — a spurious wake merely costs a no-op
        step — so callers should wake whenever in doubt.
        """
        try:
            index = self._index_of[id(component)]
        except KeyError:
            raise SimulationError(
                f"wake() for unregistered component {component!r}"
            ) from None
        if self._ready[index]:
            return
        self._wake_index(index, self.clock.now)

    def _wake_index(self, index: int, now: int) -> None:
        on_wake = self._on_wake[index]
        if on_wake is not None:
            on_wake(now)
        self._ready[index] = True
        self._gen[index] += 1  # invalidate any armed timer
        self._ready_count += 1
        self.stats.wakes += 1
        if self.tracer is not None:
            started = self._nap_from[index]
            if started >= 0:
                self.tracer.complete(
                    "nap",
                    cat="kernel",
                    ts=self._ts_base + started,
                    dur=max(0, now - started),
                    pid=SIM_PID,
                    tid=index + 1,
                )
                self._nap_from[index] = -1

    # -- progress accounting ------------------------------------------------

    @property
    def last_progress(self) -> int:
        """Cycle of the most recent progress the watchdog knows about."""
        return self._last_progress

    def note_progress(self, cycle: int) -> None:
        """Record progress units made at ``cycle`` retroactively.

        Batched settlements (a commit-replay window settling elided
        commits in one step) report the cycle the last elided commit
        actually happened at, so the deadlock watchdog measures the same
        no-progress span a stepped run would. A window may never extend
        past ``last_progress + stall_limit + 1`` (the cycle the watchdog
        would fire at): its settlement then lands — and notes progress —
        before the firing check, keeping :class:`DeadlockError` cycles
        bit-identical between engines.
        """
        if cycle > self._last_progress:
            self._last_progress = cycle

    # -- main loop ---------------------------------------------------------

    def run(self, max_cycles: int = 500_000_000) -> int:
        """Simulate until the finish condition holds; return that cycle.

        Raises:
            DeadlockError: when no component reports progress for
                ``stall_limit`` cycles while the run is unfinished.
            SimulationError: when ``max_cycles`` elapse first.
        """
        clock = self.clock
        events = self.events
        components = self._components
        ready = self._ready
        stats = self.stats
        count = len(components)
        indices = range(count)
        scheduled = self.cycle_skip
        executed = 0
        steps = 0
        events_run = 0
        try:
            while clock.now < max_cycles:
                now = clock.now
                timers = self._timers
                while timers and timers[0][0] <= now:
                    _, index, gen = heapq.heappop(timers)
                    if gen == self._gen[index] and not ready[index]:
                        self._wake_index(index, now)
                if self._finished():
                    return now
                events_run += events.run_due(now)
                progress = 0
                for index in indices:
                    if ready[index]:
                        progress += components[index].step(now) or 0
                        steps += 1
                executed += 1
                if progress:
                    self._last_progress = now
                elif now - self._last_progress > self.stall_limit:
                    self._raise_deadlock(now)
                if scheduled:
                    self._sleep_pass(now)
                clock.advance()
                if scheduled and self._ready_count == 0:
                    self._try_jump()
        finally:
            stats.cycles_executed += executed
            stats.component_steps += steps
            stats.component_steps_avoided += executed * count - steps
            stats.events_run += events_run
        suffix = f" for {self._describe()}" if self._describe else ""
        raise SimulationError(
            f"simulation exceeded max_cycles={max_cycles}{suffix}"
        )

    # -- scheduling --------------------------------------------------------

    def _sleep_pass(self, now: int) -> None:
        """Deregister every ready component that certifies quiescence."""
        ready = self._ready
        nap_floor = now + MIN_TIMER_NAP
        for index, plan in enumerate(self._plans):
            if plan is None or not ready[index]:
                continue
            wake_at = plan(now)
            if wake_at is None:
                continue  # could act next cycle: stay on the run list
            if wake_at < NEVER:
                if wake_at < nap_floor:
                    continue  # nap too short to be worth the bookkeeping
                heapq.heappush(
                    self._timers, (wake_at, index, self._gen[index])
                )
            on_sleep = self._on_sleep[index]
            if on_sleep is not None:
                on_sleep(now)
            ready[index] = False
            self._ready_count -= 1
            if self.tracer is not None:
                self._nap_from[index] = now + 1  # nap covers from now + 1

    def _try_jump(self) -> None:
        """Ready set empty: jump the clock to the earliest wake-up.

        Never jumps past the cycle at which the watchdog would fire: a
        genuinely dead machine must raise at the same cycle it would
        have when stepped cycle by cycle.
        """
        if self._finished():
            return
        now = self.clock.now
        target = self._last_progress + self.stall_limit + 1
        next_event = self.events.next_cycle
        if next_event is not None and next_event < target:
            target = next_event
        timers = self._timers
        while timers:
            cycle, index, gen = timers[0]
            if gen != self._gen[index] or self._ready[index]:
                heapq.heappop(timers)  # stale: the component woke early
                continue
            if cycle < target:
                target = cycle
            break
        if target <= now:
            return
        self.stats.skips += 1
        self.stats.cycles_skipped += target - now
        if self.tracer is not None:
            self.tracer.complete(
                "clock_jump",
                cat="kernel",
                ts=self._ts_base + now,
                dur=target - now,
                pid=SIM_PID,
                tid=0,
            )
        self.clock.jump(target)

    # -- diagnostics -------------------------------------------------------

    def _raise_deadlock(self, now: int) -> None:
        context = f" ({self._describe()})" if self._describe else ""
        detail = (
            f": {self._deadlock_detail(now)}" if self._deadlock_detail else ""
        )
        raise DeadlockError(
            f"no instruction committed for {self.stall_limit} cycles at "
            f"cycle {now}{context}{detail}"
        )
