"""The kernel's event queue for scheduled completions.

A min-heap of ``(cycle, seq, callback)`` entries. Components schedule
future completions (line-buffer fills, cache refills, bus re-queues);
the kernel drains everything due at the start of each simulated cycle.
The sequence number makes same-cycle delivery FIFO in scheduling order,
which keeps runs deterministic.

A callback may schedule further events, including at the cycle currently
being drained: :meth:`run_due` keeps popping until nothing at or before
``now`` remains, so same-cycle rescheduling is delivered within the same
drain.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable


class EventQueue:
    """Min-heap of (cycle, seq, callback) used for scheduled completions."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0

    def schedule(self, cycle: int, callback: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (cycle, self._seq, callback))

    def run_due(self, now: int) -> int:
        """Run every callback scheduled at or before ``now``."""
        ran = 0
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, _, callback = heapq.heappop(heap)
            callback()
            ran += 1
        return ran

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def next_cycle(self) -> int | None:
        return self._heap[0][0] if self._heap else None
