"""The simulation clock: a monotonic cycle counter that can jump forward."""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonic cycle counter owned by the kernel.

    Components read :attr:`now`; only the kernel advances it — one cycle
    at a time on the normal path, or directly to a future cycle on the
    cycle-skipping fast path.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at {start}")
        self._now = start

    @property
    def now(self) -> int:
        return self._now

    def advance(self) -> int:
        """Move one cycle forward; return the new cycle."""
        self._now += 1
        return self._now

    def jump(self, target: int) -> int:
        """Jump directly to ``target`` (the cycle-skip fast path)."""
        if target < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {self._now} -> {target}"
            )
        self._now = target
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now})"
