"""Reusable simulation kernel: clock, event queue and ready/wake loop.

This package is the hardware-agnostic core of the simulator. It knows
nothing about caches, buses or cores — only about *components* kept in
a ready set and stepped once per cycle while they have work, *events*
scheduled for future cycles, and a *clock* that advances one cycle at a
time while any component is ready but jumps straight to the next
wake-up when the ready set drains. Components that block deregister
themselves through :meth:`ScheduledComponent.sleep_plan` and are roused
by a cycle timer or an explicit :meth:`SimulationKernel.wake`.

The ACMP machine (:mod:`repro.acmp`) builds on this kernel; campaign
drivers (:mod:`repro.campaign`) run many kernels in parallel processes.
"""

from repro.engine.clock import Clock
from repro.engine.events import EventQueue
from repro.engine.kernel import (
    NEVER,
    KernelStats,
    ScheduledComponent,
    SimulationKernel,
    Steppable,
)

__all__ = [
    "Clock",
    "EventQueue",
    "KernelStats",
    "NEVER",
    "ScheduledComponent",
    "SimulationKernel",
    "Steppable",
]
