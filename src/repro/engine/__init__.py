"""Reusable simulation kernel: clock, event queue and main loop.

This package is the hardware-agnostic core of the simulator. It knows
nothing about caches, buses or cores — only about *components* that are
stepped once per cycle, *events* scheduled for future cycles, and a
*clock* that normally advances one cycle at a time but may jump forward
when every registered component certifies that the skipped cycles would
have been no-ops (the cycle-skipping fast path).

The ACMP machine (:mod:`repro.acmp`) builds on this kernel; campaign
drivers (:mod:`repro.campaign`) run many kernels in parallel processes.
"""

from repro.engine.clock import Clock
from repro.engine.events import EventQueue
from repro.engine.kernel import (
    NEVER,
    KernelComponent,
    KernelStats,
    SimulationKernel,
    Steppable,
)

__all__ = [
    "Clock",
    "EventQueue",
    "KernelComponent",
    "KernelStats",
    "NEVER",
    "SimulationKernel",
    "Steppable",
]
