"""Streaming statistics helpers used by analysis and reporting code."""

from __future__ import annotations

import math
from collections.abc import Iterable


class RunningStats:
    """Welford-style running mean/variance over a stream of samples.

    Keeps O(1) state, so it is safe to feed millions of per-cycle or
    per-block samples without retaining them.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf
        self._total = 0.0

    def add(self, sample: float) -> None:
        """Fold one sample into the statistics."""
        self._count += 1
        self._total += sample
        delta = sample - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (sample - self._mean)
        if sample < self._minimum:
            self._minimum = sample
        if sample > self._maximum:
            self._maximum = sample

    def extend(self, samples: Iterable[float]) -> None:
        """Fold every sample of an iterable into the statistics."""
        for sample in samples:
            self.add(sample)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self._count if self._count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._minimum if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._maximum if self._count else 0.0

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self._count}, mean={self.mean:.4g}, "
            f"stddev={self.stddev:.4g})"
        )


#: Two-sided 95 % Student-t critical values by degrees of freedom; the
#: normal value is used beyond the table (sample counts are small in
#: both seed sweeps and sampled-simulation interval sets).
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 25: 2.060, 30: 2.042,
}
_Z95 = 1.960


def t95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of
    freedom (nearest smaller tabulated df between rows — conservative —
    and the normal approximation far beyond the table)."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    critical = _T95.get(df)
    if critical is None:
        lower = [d for d in _T95 if d <= df]
        critical = _T95[max(lower)] if max(lower) < 30 else _Z95
    return critical


def mean_halfwidth95(values: Iterable[float]) -> tuple[float, float]:
    """Sample mean and two-sided 95 % CI half-width (Student t).

    With fewer than two samples the half-width is 0.0 — no spread
    information, a point estimate only.
    """
    samples = [float(value) for value in values]
    if not samples:
        raise ValueError("mean_halfwidth95 needs at least one sample")
    n = len(samples)
    mean = sum(samples) / n
    if n < 2:
        return mean, 0.0
    variance = sum((value - mean) ** 2 for value in samples) / (n - 1)
    return mean, t95(n - 1) * math.sqrt(variance / n)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; 0.0 for an empty iterable."""
    log_sum = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        log_sum += math.log(value)
        count += 1
    if count == 0:
        return 0.0
    return math.exp(log_sum / count)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values; 0.0 for an empty iterable."""
    inverse_sum = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"harmonic mean requires positive values, got {value}")
        inverse_sum += 1.0 / value
        count += 1
    if count == 0:
        return 0.0
    return count / inverse_sum
