"""Streaming statistics helpers used by analysis and reporting code."""

from __future__ import annotations

import math
from collections.abc import Iterable


class RunningStats:
    """Welford-style running mean/variance over a stream of samples.

    Keeps O(1) state, so it is safe to feed millions of per-cycle or
    per-block samples without retaining them.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf
        self._total = 0.0

    def add(self, sample: float) -> None:
        """Fold one sample into the statistics."""
        self._count += 1
        self._total += sample
        delta = sample - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (sample - self._mean)
        if sample < self._minimum:
            self._minimum = sample
        if sample > self._maximum:
            self._maximum = sample

    def extend(self, samples: Iterable[float]) -> None:
        """Fold every sample of an iterable into the statistics."""
        for sample in samples:
            self.add(sample)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self._count if self._count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._minimum if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._maximum if self._count else 0.0

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self._count}, mean={self.mean:.4g}, "
            f"stddev={self.stddev:.4g})"
        )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; 0.0 for an empty iterable."""
    log_sum = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        log_sum += math.log(value)
        count += 1
    if count == 0:
        return 0.0
    return math.exp(log_sum / count)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values; 0.0 for an empty iterable."""
    inverse_sum = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"harmonic mean requires positive values, got {value}")
        inverse_sum += 1.0 / value
        count += 1
    if count == 0:
        return 0.0
    return count / inverse_sum
