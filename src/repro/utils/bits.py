"""Bit-manipulation helpers used by caches, predictors and interconnects."""

from __future__ import annotations

from repro.errors import ConfigurationError


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises:
        ConfigurationError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def mask(bits: int) -> int:
    """Return an integer with the low ``bits`` bits set."""
    if bits < 0:
        raise ConfigurationError(f"bit count must be non-negative, got {bits}")
    return (1 << bits) - 1


def align_down(address: int, alignment: int) -> int:
    """Round ``address`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ConfigurationError(f"alignment {alignment} is not a power of two")
    return address & ~(alignment - 1)


def align_up(address: int, alignment: int) -> int:
    """Round ``address`` up to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ConfigurationError(f"alignment {alignment} is not a power of two")
    return (address + alignment - 1) & ~(alignment - 1)
