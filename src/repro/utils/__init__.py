"""Small shared helpers: bit manipulation, statistics, validation."""

from repro.utils.bits import (
    align_down,
    align_up,
    is_power_of_two,
    log2_int,
    mask,
)
from repro.utils.stats import RunningStats, geometric_mean, harmonic_mean
from repro.utils.validation import (
    require,
    require_positive,
    require_power_of_two,
    require_range,
)

__all__ = [
    "align_down",
    "align_up",
    "is_power_of_two",
    "log2_int",
    "mask",
    "RunningStats",
    "geometric_mean",
    "harmonic_mean",
    "require",
    "require_positive",
    "require_power_of_two",
    "require_range",
]
