"""Validation helpers that raise :class:`ConfigurationError` on bad input."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.utils.bits import is_power_of_two


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value`` to be strictly positive."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def require_power_of_two(value: int, name: str) -> None:
    """Require ``value`` to be a positive power of two."""
    if not is_power_of_two(value):
        raise ConfigurationError(f"{name} must be a power of two, got {value}")


def require_range(value: float, low: float, high: float, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be within [{low}, {high}], got {value}"
        )
