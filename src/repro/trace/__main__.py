"""Trace corpus tooling: ``python -m repro.trace <command>``.

Commands:

* ``dump`` — render a trace set directory or a single thread file
  (``.trc``, ``.trcz``, ``.trct``) in the human-readable text format;
* ``index`` — print a ``.trcz`` file's header and chunk index (what the
  seek path uses), without decoding any chunk;
* ``convert`` — re-encode a trace set directory between ``trc``,
  ``trcz`` and ``trct`` (chunked sources stream through, O(chunk));
* ``capture`` — synthesize a benchmark and persist it into a corpus
  tree in the layout ``--event-dir`` resolves.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from repro.errors import TraceError
from repro.obs.log import add_log_arguments, setup_from_args
from repro.trace.chunked import ChunkedThreadReader, LazyThreadTrace
from repro.trace.encoding import (
    decode_thread_trace,
    format_thread_trace,
    open_trace_set,
    parse_thread_trace,
    write_trace_set,
)
from repro.trace.provider import capture_trace_set

# Not __name__: under `python -m` this module IS "__main__",
# which would fall outside the configured "repro" logger tree.
_LOG = logging.getLogger("repro.trace.cli")


def _load_thread(path: Path):
    suffix = path.suffix
    if suffix == ".trc":
        return decode_thread_trace(path.read_bytes())
    if suffix == ".trct":
        return parse_thread_trace(path.read_text())
    if suffix == ".trcz":
        return LazyThreadTrace(ChunkedThreadReader(path))
    raise TraceError(f"unknown trace file suffix {suffix!r} on {path}")


def _cmd_dump(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if path.is_dir():
        traces = open_trace_set(path)
        print(f"# set {traces.benchmark} threads={traces.thread_count}")
        threads = traces.threads
    else:
        threads = [_load_thread(path)]
    for thread in threads:
        sys.stdout.write(format_thread_trace(thread))
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    path = Path(args.path)
    files = sorted(path.glob("*.trcz")) if path.is_dir() else [path]
    if not files:
        raise TraceError(f"no .trcz files in {path}")
    for file_path in files:
        reader = ChunkedThreadReader(file_path)
        print(
            f"{file_path.name}: thread {reader.thread_id}, "
            f"{reader.record_count} records, "
            f"{reader.total_instructions} instructions, "
            f"{reader.chunk_count} chunks of {reader.chunk_records}"
        )
        for row in reader.chunk_table():
            print(
                f"  chunk {row['chunk']:4d}  offset {row['offset']:10d}  "
                f"{row['compressed_bytes']:8d} B  "
                f"records {row['first_record']}+{row['records']}  "
                f"instructions {row['instructions_before']}+{row['instructions']}"
            )
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    traces = open_trace_set(args.source)
    fingerprint = write_trace_set(
        traces,
        args.destination,
        fmt=args.format,
        chunk_records=args.chunk_records,
    )
    _LOG.info(
        "wrote %s (%d threads) as %s to %s [fingerprint %s]",
        traces.benchmark,
        traces.thread_count,
        args.format,
        args.destination,
        fingerprint,
    )
    return 0


def _cmd_capture(args: argparse.Namespace) -> int:
    from repro.trace.synthesis import synthesize_benchmark

    traces = synthesize_benchmark(
        args.benchmark,
        thread_count=args.threads,
        scale=args.scale,
        seed=args.seed,
    )
    destination = capture_trace_set(
        traces,
        args.out,
        scale=args.scale,
        seed=args.seed,
        chunk_records=args.chunk_records,
    )
    _LOG.info("captured %s to %s", args.benchmark, destination)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect, convert and capture on-disk trace sets.",
    )
    add_log_arguments(parser, quiet=True)
    commands = parser.add_subparsers(dest="command", required=True)

    dump = commands.add_parser(
        "dump", help="render a trace set or thread file as text"
    )
    dump.add_argument("path", help="set directory or .trc/.trcz/.trct file")
    dump.set_defaults(handler=_cmd_dump)

    index = commands.add_parser(
        "index", help="print a .trcz chunk index without decoding chunks"
    )
    index.add_argument("path", help=".trcz file or set directory")
    index.set_defaults(handler=_cmd_index)

    convert = commands.add_parser(
        "convert", help="re-encode a trace set between formats"
    )
    convert.add_argument("source", help="source set directory")
    convert.add_argument("destination", help="destination set directory")
    convert.add_argument(
        "--format",
        choices=("trc", "trcz", "trct"),
        default="trcz",
        help="destination encoding (default: trcz)",
    )
    convert.add_argument(
        "--chunk-records",
        type=int,
        default=None,
        help="records per compressed chunk for trcz output",
    )
    convert.set_defaults(handler=_cmd_convert)

    capture = commands.add_parser(
        "capture", help="synthesize a benchmark into a trace corpus"
    )
    capture.add_argument("benchmark", help="benchmark name (see workloads)")
    capture.add_argument("--out", required=True, help="corpus root directory")
    capture.add_argument("--threads", type=int, default=9)
    capture.add_argument("--scale", type=float, default=1.0)
    capture.add_argument("--seed", type=int, default=0)
    capture.add_argument("--chunk-records", type=int, default=None)
    capture.set_defaults(handler=_cmd_capture)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_from_args(args)
    try:
        return args.handler(args)
    except BrokenPipeError:  # dump | head: the consumer hung up, not an error
        return 0
    except (TraceError, OSError) as exc:
        _LOG.error("error: %s", exc)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
