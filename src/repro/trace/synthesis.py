"""Synthetic multi-threaded trace generation.

This module replaces the paper's Pin-based tracing step (Figure 6, step 1).
Given a :class:`~repro.workloads.model.WorkloadModel`, it produces one trace
per thread with the same structure real PinTool traces have: basic blocks
with branch outcomes, the five OpenMP synchronisation events, and
per-section IPC records (step 2 of the paper's flow).

Key properties of the generated traces:

* **Code sharing.** All threads walk the same shared code layout in the
  same order, so the dynamic instruction-sharing measured on the traces
  matches the model's ``sharing_dynamic`` (Fig. 4) and shared-I-cache
  mutual prefetching arises exactly as in the paper.
* **Scale-invariant miss behaviour.** Steady-state I-cache misses are
  produced by a fresh-line streaming mechanism whose per-kilo-instruction
  rate (``cold_mpki_*``) does not depend on trace length, so MPKI values
  match the paper's full-length runs even on short synthetic traces.
* **Loop-buffer behaviour.** Inner loops re-execute their bodies
  ``inner_trips`` times; bodies smaller than the line-buffer set are
  captured by it, reproducing the Fig. 9 access-ratio split.
* **Predictable branches.** Loop back-edges have fixed trip counts (the
  loop predictor captures them); a calibrated fraction of data-dependent
  branches with random outcomes produces the model's branch MPKI.

Control-flow discontinuities (entries into streamed cold blocks) carry no
branch record; the front-end treats them as correctly-predicted call/return
transitions, which keeps the branch-miss CPI component governed solely by
the calibrated branch MPKI, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random

from repro.errors import WorkloadError
from repro.trace.records import (
    INSTRUCTION_BYTES,
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    IpcRecord,
    SyncKind,
    SyncRecord,
    TraceRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet
from repro.workloads.codegen import CodeRegion, build_region, stable_seed
from repro.workloads.model import WorkloadModel

#: Address-space layout of the synthetic "binary".
SERIAL_BASE = 0x0040_0000
SHARED_BASE = 0x0080_0000
PRIVATE_BASE = 0x0100_0000
PRIVATE_STRIDE = 0x0008_0000
LOCK_REGION_BASE = 0x0030_0000
SERIAL_COLD_BASE = 0x2000_0000
PARALLEL_COLD_BASE = 0x4000_0000

#: Number of distinct critical-section locks used by task-parallel codes.
LOCK_COUNT = 4

#: Mean instructions between critical sections in benchmarks that use them
#: (botsspar, botsalgn).
CRITICAL_SECTION_PERIOD = 1500

#: Instructions inside one critical-section update block.
CRITICAL_BLOCK_INSTRUCTIONS = 8

_LINE_BYTES = 64


@dataclass
class _StreamState:
    """Fresh-line streaming: the scale-invariant steady-state miss source."""

    base_address: int
    block_instructions: int
    period: float  # instructions between streamed blocks; inf disables
    emitted_instructions: int = 0
    next_at: float = 0.0
    index: int = 0

    @classmethod
    def build(cls, base_address: int, bb_instructions: int, cold_mpki: float) -> "_StreamState":
        block_instructions = max(1, bb_instructions)
        lines = math.ceil(block_instructions * INSTRUCTION_BYTES / _LINE_BYTES)
        if cold_mpki <= 0:
            period = math.inf
        else:
            period = lines * 1000.0 / cold_mpki
        state = cls(
            base_address=base_address,
            block_instructions=block_instructions,
            period=period,
        )
        state.next_at = period
        return state

    @property
    def lines_per_block(self) -> int:
        return math.ceil(self.block_instructions * INSTRUCTION_BYTES / _LINE_BYTES)

    def advance(self, instructions: int) -> int:
        """Account for executed instructions; return due streamed blocks."""
        self.emitted_instructions += instructions
        due = 0
        while self.emitted_instructions >= self.next_at:
            self.next_at += self.period
            due += 1
        return due

    def next_block(self) -> BasicBlockRecord:
        """The next fresh cold block. Addresses are common to all threads."""
        address = self.base_address + self.index * self.lines_per_block * _LINE_BYTES
        self.index += 1
        return BasicBlockRecord(
            address=address, instruction_count=self.block_instructions, branch=None
        )


class _RegionWalker:
    """Walks a code region's loops cyclically, emitting dynamic records.

    One walker per (thread, region); its cursor persists across parallel
    phases so successive phases continue through the footprint the way a
    time-stepped HPC code revisits its kernels.
    """

    def __init__(
        self,
        region: CodeRegion,
        rng: Random,
        *,
        trip_factor: float,
        hard_branch_per_instruction: float,
        stream: _StreamState | None,
    ) -> None:
        if not region.loops:
            raise WorkloadError("cannot walk an empty code region")
        self._region = region
        self._rng = rng
        self._trip_factor = trip_factor
        self._hard_per_instruction = hard_branch_per_instruction
        self._stream = stream
        self._loop_index = 0

    def emit(self, records: list[TraceRecord], budget: int) -> int:
        """Emit at least ``budget`` instructions worth of records.

        Returns the number of instructions emitted (the last basic block may
        overshoot the budget by less than one block).
        """
        emitted = 0
        rng = self._rng
        loops = self._region.loops
        while emitted < budget:
            loop = loops[self._loop_index]
            self._loop_index = (self._loop_index + 1) % len(loops)
            trips = max(1, round(loop.trips * self._trip_factor))
            blocks = loop.blocks
            last_block_index = len(blocks) - 1
            for trip in range(trips):
                backedge_taken = trip != trips - 1
                for index, block in enumerate(blocks):
                    if index == last_block_index:
                        branch = BranchOutcome(
                            BranchKind.CONDITIONAL, backedge_taken, loop.head_address
                        )
                    elif rng.random() < self._hard_per_instruction * block.instruction_count:
                        # Data-dependent branch: direction is unpredictable,
                        # both paths continue at the fall-through address so
                        # the block sequence stays identical across threads.
                        branch = BranchOutcome(
                            BranchKind.CONDITIONAL,
                            rng.random() < 0.5,
                            block.end_address,
                        )
                    else:
                        branch = BranchOutcome(
                            BranchKind.CONDITIONAL, False, loop.end_address
                        )
                    records.append(
                        BasicBlockRecord(block.address, block.instruction_count, branch)
                    )
                    emitted += block.instruction_count
                    emitted += self._emit_due_streams(records, block.instruction_count)
                    if emitted >= budget:
                        return emitted
        return emitted

    def _emit_due_streams(self, records: list[TraceRecord], instructions: int) -> int:
        if self._stream is None:
            return 0
        emitted = 0
        for _ in range(self._stream.advance(instructions)):
            block = self._stream.next_block()
            records.append(block)
            emitted += block.instruction_count
        return emitted


@dataclass(frozen=True)
class _Layout:
    """All code regions of one benchmark, shared by every thread."""

    serial: CodeRegion
    shared: CodeRegion
    private: tuple[CodeRegion, ...]  # one per thread; empty loops tuple => none


def _build_layout(model: WorkloadModel, thread_count: int) -> _Layout:
    rng = Random(stable_seed(model.name, "layout"))
    serial = build_region(
        SERIAL_BASE,
        model.footprint_serial_bytes,
        model.loop_body_bytes_serial,
        model.bb_bytes_serial,
        model.inner_trips_serial,
        rng,
    )
    shared = build_region(
        SHARED_BASE,
        model.footprint_parallel_bytes,
        model.loop_body_bytes_parallel,
        model.bb_bytes_parallel,
        model.inner_trips_parallel,
        rng,
    )
    privates: list[CodeRegion] = []
    total_private = model.footprint_parallel_bytes * (1.0 - model.sharing_static) / model.sharing_static
    per_thread_private = total_private / thread_count
    for thread_id in range(thread_count):
        if per_thread_private < 2 * model.bb_bytes_parallel:
            privates.append(
                CodeRegion(base_address=PRIVATE_BASE + thread_id * PRIVATE_STRIDE, loops=())
            )
            continue
        body = min(model.loop_body_bytes_parallel, per_thread_private / 2)
        privates.append(
            build_region(
                PRIVATE_BASE + thread_id * PRIVATE_STRIDE,
                int(math.ceil(per_thread_private)),
                body,
                model.bb_bytes_parallel,
                model.inner_trips_parallel,
                rng,
            )
        )
    return _Layout(serial=serial, shared=shared, private=tuple(privates))


class _ThreadSynthesizer:
    """Generates one thread's trace records."""

    def __init__(
        self,
        model: WorkloadModel,
        layout: _Layout,
        thread_id: int,
        thread_count: int,
        seed: int,
    ) -> None:
        self._model = model
        self._thread_id = thread_id
        self._rng = Random(stable_seed(model.name, "thread", thread_id, seed))
        if thread_id == 0:
            trip_factor = 1.0
        else:
            trip_factor = 1.0 + self._rng.uniform(-model.imbalance, model.imbalance)
        hard_parallel = 2.0 * model.branch_mpki_parallel / 1000.0
        self._shared_walker = _RegionWalker(
            layout.shared,
            self._rng,
            trip_factor=trip_factor,
            hard_branch_per_instruction=hard_parallel,
            stream=_StreamState.build(
                PARALLEL_COLD_BASE,
                model.bb_instructions_parallel,
                model.cold_mpki_parallel,
            ),
        )
        private_region = layout.private[thread_id]
        self._private_walker = (
            _RegionWalker(
                private_region,
                self._rng,
                trip_factor=trip_factor,
                hard_branch_per_instruction=hard_parallel,
                stream=None,
            )
            if private_region.loops
            else None
        )
        if thread_id == 0:
            hard_serial = 2.0 * model.branch_mpki_serial / 1000.0
            self._serial_walker = _RegionWalker(
                layout.serial,
                self._rng,
                trip_factor=1.0,
                hard_branch_per_instruction=hard_serial,
                stream=_StreamState.build(
                    SERIAL_COLD_BASE,
                    model.bb_instructions_serial,
                    model.cold_mpki_serial,
                ),
            )
        else:
            self._serial_walker = None
        self._private_emitted = 0
        self._shared_emitted = 0
        self._parallel_emitted = 0
        self._criticals_done = 0

    def emit_serial(self, records: list[TraceRecord], budget: int) -> None:
        """Emit a serial section (master thread only)."""
        if self._serial_walker is None:
            raise WorkloadError("only the master thread executes serial code")
        if budget <= 0:
            return
        records.append(IpcRecord(self._model.ipc_master_serial))
        self._serial_walker.emit(records, budget)

    def emit_parallel_phase(self, records: list[TraceRecord], phase: int, budget: int) -> None:
        """Emit one full parallel phase, bracketed by sync events."""
        model = self._model
        records.append(SyncRecord(SyncKind.PARALLEL_START, phase))
        ipc = model.ipc_master_parallel if self._thread_id == 0 else model.ipc_worker_parallel
        records.append(IpcRecord(ipc))
        remaining = budget
        share = model.sharing_dynamic
        while remaining > 0:
            chunk = min(remaining, max(500, budget // 8))
            emitted = self._shared_walker.emit(records, max(1, int(chunk * share)))
            self._shared_emitted += emitted
            self._parallel_emitted += emitted
            remaining -= emitted
            if self._private_walker is not None and share < 1.0:
                private_due = self._shared_emitted * (1.0 - share) / share
                debt = int(private_due - self._private_emitted)
                if debt > 0:
                    emitted = self._private_walker.emit(records, debt)
                    self._private_emitted += emitted
                    self._parallel_emitted += emitted
                    remaining -= emitted
            if model.uses_critical_sections:
                due = self._parallel_emitted // CRITICAL_SECTION_PERIOD
                while self._criticals_done < due:
                    cost = self._emit_critical_section(records)
                    self._criticals_done += 1
                    self._parallel_emitted += cost
                    remaining -= cost
        records.append(SyncRecord(SyncKind.PARALLEL_END, phase))

    def _emit_critical_section(self, records: list[TraceRecord]) -> int:
        lock = self._rng.randrange(LOCK_COUNT)
        records.append(SyncRecord(SyncKind.WAIT, lock))
        block = BasicBlockRecord(
            address=LOCK_REGION_BASE + lock * _LINE_BYTES,
            instruction_count=CRITICAL_BLOCK_INSTRUCTIONS,
            branch=None,
        )
        records.append(block)
        records.append(SyncRecord(SyncKind.SIGNAL, lock))
        return block.instruction_count


def _serial_chunk_weights(phases: int) -> list[float]:
    """Distribution of serial work around the parallel phases.

    One chunk before each phase plus a tail after the last: initialisation
    is the largest serial stretch, the final reduction/report the smallest.
    """
    if phases == 1:
        return [0.7, 0.3]
    middle = 0.5 / (phases - 1)
    return [0.35] + [middle] * (phases - 1) + [0.15]


def synthesize(
    model: WorkloadModel,
    *,
    thread_count: int = 9,
    scale: float = 1.0,
    seed: int = 0,
) -> TraceSet:
    """Generate the full per-thread trace set for one benchmark.

    Args:
        model: the workload model to synthesise.
        thread_count: total threads including the master (the paper's ACMP
            runs 1 master + 8 workers = 9).
        scale: multiplier on the per-thread parallel instruction budget;
            use < 1 for fast tests, > 1 for high-resolution MPKI studies.
        seed: extra seed folded into every thread's RNG, for generating
            independent trace realisations.

    Returns:
        A validated-shape :class:`TraceSet` with ``threads[0]`` as master.
    """
    if thread_count < 1:
        raise WorkloadError(f"thread_count must be >= 1, got {thread_count}")
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")

    layout = _build_layout(model, thread_count)
    synthesizers = [
        _ThreadSynthesizer(model, layout, thread_id, thread_count, seed)
        for thread_id in range(thread_count)
    ]
    phases = model.parallel_phases
    parallel_budget = model.scaled_parallel_instructions(scale)
    per_phase = max(500, parallel_budget // phases)
    serial_total = model.serial_instructions(thread_count, scale)
    weights = _serial_chunk_weights(phases)
    serial_chunks = [int(serial_total * weight) for weight in weights]

    traces = [ThreadTrace(thread_id=thread_id) for thread_id in range(thread_count)]
    for phase in range(phases):
        synthesizers[0].emit_serial(traces[0].records, serial_chunks[phase])
        for thread_id in range(thread_count):
            synthesizers[thread_id].emit_parallel_phase(
                traces[thread_id].records, phase, per_phase
            )
    synthesizers[0].emit_serial(traces[0].records, serial_chunks[-1])
    return TraceSet(benchmark=model.name, threads=traces)


def synthesize_benchmark(
    name: str,
    *,
    thread_count: int = 9,
    scale: float = 1.0,
    seed: int = 0,
) -> TraceSet:
    """Convenience wrapper: look up a benchmark by name and synthesise it."""
    from repro.workloads.suites import get_benchmark

    return synthesize(
        get_benchmark(name), thread_count=thread_count, scale=scale, seed=seed
    )
