"""Trace providers: synthesis and file-backed streams behind one protocol.

The simulator stack never cares where records come from; everything
downstream of a :class:`~repro.trace.stream.TraceSet` is source-blind.
This module makes the source an explicit seam:

* :class:`SynthesisProvider` wraps the in-process workload synthesiser
  (the 24 calibrated models), optionally persisting every set it builds
  to a chunked on-disk corpus (the *capture hook*), so synthetic runs
  double as the first trace corpus;
* :class:`TraceDirectoryProvider` resolves benchmark names inside an
  ``--event-dir`` style tree of captured trace sets and streams them
  back without materialising.

Both satisfy :class:`TraceProvider`; the campaign runner and the
experiment drivers pick one per invocation via :func:`provider_for`.

Corpus layout (what the capture hook writes and the directory provider
resolves)::

    <root>/<benchmark>/t<threads>__scale<scale>__seed<seed>/
        manifest.txt
        thread_000.trcz
        ...

A benchmark directory that is itself a trace set (a bare ``manifest.txt``
with no parameter subdirectories) also resolves, so hand-captured
corpora don't need the parameter slug.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import TraceError
from repro.trace.encoding import open_trace_set, write_trace_set
from repro.trace.stream import TraceSet

__all__ = [
    "SynthesisProvider",
    "TraceDirectoryProvider",
    "TraceProvider",
    "capture_trace_set",
    "provider_for",
    "trace_set_slug",
]

_UNSAFE = re.compile(r"[^A-Za-z0-9._+-]")


def _sanitize(part: str) -> str:
    return _UNSAFE.sub("-", part)


def trace_set_slug(thread_count: int, scale: float, seed: int) -> str:
    """Directory name for one ``(threads, scale, seed)`` realisation.

    ``scale`` uses ``%g`` so 1.0 and 1 collapse to the same slug,
    matching how the result store formats scales.
    """
    scale_part = f"{scale:g}".replace("/", "-")
    return f"t{thread_count}__scale{scale_part}__seed{seed}"


@runtime_checkable
class TraceProvider(Protocol):
    """Anything that can hand back a trace set for a benchmark name."""

    def trace_set(
        self,
        benchmark: str,
        *,
        thread_count: int = 9,
        scale: float = 1.0,
        seed: int = 0,
    ) -> TraceSet: ...


def capture_trace_set(
    traces: TraceSet,
    root: str | Path,
    *,
    scale: float = 1.0,
    seed: int = 0,
    chunk_records: int | None = None,
) -> Path:
    """Persist a trace set into the corpus layout; return its directory.

    Idempotent and safe under concurrent campaign workers: the set is
    written into a scratch sibling and renamed into place, and a
    directory that already holds a manifest is left untouched.
    """
    destination = (
        Path(root)
        / _sanitize(traces.benchmark)
        / trace_set_slug(traces.thread_count, scale, seed)
    )
    if (destination / "manifest.txt").exists():
        return destination
    scratch = destination.with_name(f"{destination.name}.tmp{os.getpid()}")
    write_trace_set(traces, scratch, chunked=True, chunk_records=chunk_records)
    try:
        os.rename(scratch, destination)
    except OSError:
        # A concurrent worker captured the same set first; keep theirs.
        if (destination / "manifest.txt").exists():
            for stray in scratch.iterdir():
                stray.unlink()
            scratch.rmdir()
        else:
            raise
    return destination


class SynthesisProvider:
    """The in-process synthesiser as a provider, with a capture hook.

    With ``capture_dir`` set, every synthesized set is persisted to the
    corpus (chunked ``.trcz``) as a side effect — the capture hook. The
    returned set is still the in-memory one; runs are byte-identical
    with the hook on or off.
    """

    def __init__(
        self,
        capture_dir: str | Path | None = None,
        *,
        chunk_records: int | None = None,
    ) -> None:
        self.capture_dir = Path(capture_dir) if capture_dir is not None else None
        self.chunk_records = chunk_records

    def trace_set(
        self,
        benchmark: str,
        *,
        thread_count: int = 9,
        scale: float = 1.0,
        seed: int = 0,
    ) -> TraceSet:
        from repro.trace.synthesis import synthesize_benchmark

        traces = synthesize_benchmark(
            benchmark, thread_count=thread_count, scale=scale, seed=seed
        )
        if self.capture_dir is not None:
            capture_trace_set(
                traces,
                self.capture_dir,
                scale=scale,
                seed=seed,
                chunk_records=self.chunk_records,
            )
        return traces


class TraceDirectoryProvider:
    """Streams captured trace sets out of an ``--event-dir`` tree.

    Resolution order for ``trace_set("CG", thread_count=9, ...)``:

    1. ``<root>/CG/t9__scale<scale>__seed<seed>/`` — the capture layout;
    2. ``<root>/CG/`` when it is itself a trace set (bare manifest).

    Chunked sets come back streamed (:class:`StreamedTraceSet`); eager
    formats come back materialised. A resolved set must match the
    requested thread count — a silent mismatch would change sync-window
    alignment, so it raises instead.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise TraceError(f"trace directory {self.root} does not exist")

    def trace_set(
        self,
        benchmark: str,
        *,
        thread_count: int = 9,
        scale: float = 1.0,
        seed: int = 0,
    ) -> TraceSet:
        base = self.root / _sanitize(benchmark)
        slug = trace_set_slug(thread_count, scale, seed)
        candidates = [base / slug, base]
        for candidate in candidates:
            if (candidate / "manifest.txt").exists():
                traces = open_trace_set(candidate)
                if traces.thread_count != thread_count:
                    raise TraceError(
                        f"{candidate} holds {traces.thread_count} threads, "
                        f"run requested {thread_count}"
                    )
                return traces
        raise TraceError(
            f"no captured trace set for benchmark {benchmark!r} "
            f"(looked for {candidates[0]} and {candidates[1]})"
        )


def provider_for(
    event_dir: str | Path | None = None,
    capture_dir: str | Path | None = None,
) -> TraceProvider:
    """The provider a CLI invocation implies.

    ``event_dir`` wins (read from disk); otherwise synthesis, capturing
    when ``capture_dir`` is given.
    """
    if event_dir is not None:
        return TraceDirectoryProvider(event_dir)
    return SynthesisProvider(capture_dir)
