"""Trace data model, codecs, streams, validation and synthesis.

The trace layer reproduces the paper's Pin-based methodology (Figure 6):
one record stream per thread containing basic blocks with branch outcomes,
OpenMP synchronisation events, and per-section IPC values.
"""

from repro.trace.records import (
    INSTRUCTION_BYTES,
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    EndRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
    TraceRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet, TraceStream
from repro.trace.encoding import (
    decode_thread_trace,
    encode_thread_trace,
    format_thread_trace,
    open_trace_set,
    parse_thread_trace,
    read_trace_set,
    write_trace_set,
)
from repro.trace.chunked import (
    ChunkedThreadReader,
    ChunkedTraceWriter,
    LazyThreadTrace,
    StreamedTraceSet,
)
from repro.trace.fingerprint import trace_fingerprint
from repro.trace.provider import (
    SynthesisProvider,
    TraceDirectoryProvider,
    TraceProvider,
    capture_trace_set,
    provider_for,
)
from repro.trace.validation import TraceReport, validate_thread_trace, validate_trace_set

__all__ = [
    "INSTRUCTION_BYTES",
    "BasicBlockRecord",
    "BranchKind",
    "BranchOutcome",
    "EndRecord",
    "IpcRecord",
    "SyncKind",
    "SyncRecord",
    "TraceRecord",
    "ThreadTrace",
    "TraceSet",
    "TraceStream",
    "ChunkedThreadReader",
    "ChunkedTraceWriter",
    "LazyThreadTrace",
    "StreamedTraceSet",
    "SynthesisProvider",
    "TraceDirectoryProvider",
    "TraceProvider",
    "capture_trace_set",
    "decode_thread_trace",
    "encode_thread_trace",
    "format_thread_trace",
    "open_trace_set",
    "parse_thread_trace",
    "provider_for",
    "read_trace_set",
    "trace_fingerprint",
    "write_trace_set",
    "TraceReport",
    "validate_thread_trace",
    "validate_trace_set",
]
