"""Trace data model, codecs, streams, validation and synthesis.

The trace layer reproduces the paper's Pin-based methodology (Figure 6):
one record stream per thread containing basic blocks with branch outcomes,
OpenMP synchronisation events, and per-section IPC values.
"""

from repro.trace.records import (
    INSTRUCTION_BYTES,
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    EndRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
    TraceRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet, TraceStream
from repro.trace.encoding import (
    decode_thread_trace,
    encode_thread_trace,
    format_thread_trace,
    parse_thread_trace,
    read_trace_set,
    write_trace_set,
)
from repro.trace.validation import TraceReport, validate_thread_trace, validate_trace_set

__all__ = [
    "INSTRUCTION_BYTES",
    "BasicBlockRecord",
    "BranchKind",
    "BranchOutcome",
    "EndRecord",
    "IpcRecord",
    "SyncKind",
    "SyncRecord",
    "TraceRecord",
    "ThreadTrace",
    "TraceSet",
    "TraceStream",
    "decode_thread_trace",
    "encode_thread_trace",
    "format_thread_trace",
    "parse_thread_trace",
    "read_trace_set",
    "write_trace_set",
    "TraceReport",
    "validate_thread_trace",
    "validate_trace_set",
]
