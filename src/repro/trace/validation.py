"""Structural validation of traces before simulation.

The simulator assumes traces obey the synchronisation protocol (balanced
parallel regions, workers only active inside parallel phases, matched
wait/signal pairs). Validating up front turns corrupt traces into clear
:class:`TraceError` diagnostics instead of simulator deadlocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.trace.records import (
    BasicBlockRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet


@dataclass
class TraceReport:
    """Summary produced by :func:`validate_trace_set`."""

    benchmark: str
    thread_count: int
    instruction_counts: list[int] = field(default_factory=list)
    parallel_phase_count: int = 0

    @property
    def total_instructions(self) -> int:
        return sum(self.instruction_counts)


def validate_thread_trace(trace: ThreadTrace, is_master: bool) -> int:
    """Validate one thread's stream; return its parallel phase count.

    Raises:
        TraceError: on unbalanced regions, nested parallel regions,
            blocks outside regions on worker threads, or invalid IPC/sync
            placement.
    """
    phases, _ = _validate_thread(trace, is_master)
    return phases


def _validate_thread(trace: ThreadTrace, is_master: bool) -> tuple[int, int]:
    """Single-pass validation: ``(parallel phases, total instructions)``.

    One linear walk over ``trace.records`` with O(1) state — safe for
    file-backed :class:`~repro.trace.chunked.LazyThreadTrace` streams,
    where a separate ``instruction_count`` pass would decode every chunk
    a second time.
    """
    in_parallel = False
    phases = 0
    instructions = 0
    held_locks: set[int] = set()
    for position, record in enumerate(trace.records):
        if isinstance(record, SyncRecord):
            if record.kind is SyncKind.PARALLEL_START:
                if in_parallel:
                    raise TraceError(
                        f"thread {trace.thread_id}: nested PARALLEL_START "
                        f"at record {position}"
                    )
                in_parallel = True
                phases += 1
            elif record.kind is SyncKind.PARALLEL_END:
                if not in_parallel:
                    raise TraceError(
                        f"thread {trace.thread_id}: PARALLEL_END without start "
                        f"at record {position}"
                    )
                in_parallel = False
            elif record.kind is SyncKind.WAIT:
                if record.object_id in held_locks:
                    raise TraceError(
                        f"thread {trace.thread_id}: re-acquires lock "
                        f"{record.object_id} at record {position}"
                    )
                held_locks.add(record.object_id)
            elif record.kind is SyncKind.SIGNAL:
                if record.object_id not in held_locks:
                    raise TraceError(
                        f"thread {trace.thread_id}: SIGNAL of unheld lock "
                        f"{record.object_id} at record {position}"
                    )
                held_locks.discard(record.object_id)
        elif isinstance(record, BasicBlockRecord):
            if not is_master and not in_parallel:
                raise TraceError(
                    f"worker thread {trace.thread_id} executes code outside "
                    f"a parallel region at record {position}"
                )
            instructions += record.instruction_count
        elif isinstance(record, IpcRecord):
            pass  # always legal
    if in_parallel:
        raise TraceError(f"thread {trace.thread_id}: unterminated parallel region")
    if held_locks:
        raise TraceError(
            f"thread {trace.thread_id}: locks {sorted(held_locks)} never released"
        )
    return phases, instructions


def validate_trace_set(trace_set: TraceSet) -> TraceReport:
    """Validate a whole trace set; return a :class:`TraceReport`.

    Beyond per-thread checks, verifies that every thread agrees on the
    number of parallel phases (the static-scheduling replay requires all
    threads to participate in every region).
    """
    if trace_set.thread_count == 0:
        raise TraceError(f"trace set '{trace_set.benchmark}' has no threads")
    report = TraceReport(
        benchmark=trace_set.benchmark, thread_count=trace_set.thread_count
    )
    phase_counts = []
    for trace in trace_set.threads:
        # One pass per thread: the instruction total rides along with the
        # structural walk instead of re-reading the records.
        phases, instructions = _validate_thread(trace, is_master=trace.thread_id == 0)
        phase_counts.append(phases)
        report.instruction_counts.append(instructions)
    if len(set(phase_counts)) > 1:
        raise TraceError(
            f"threads disagree on parallel phase count: {phase_counts}"
        )
    report.parallel_phase_count = phase_counts[0]
    return report
