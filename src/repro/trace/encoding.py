"""On-disk trace codecs.

Two interchangeable encodings are provided:

* a compact binary format (``.trc``) mirroring the paper's per-thread trace
  files — one file per thread plus a small set manifest; and
* a human-readable text format (``.trct``) convenient for debugging and for
  inspecting what the PinTool-equivalent synthesiser produced.

Both round-trip exactly (verified by property-based tests).
"""

from __future__ import annotations

import io
import struct
from pathlib import Path

from repro.errors import TraceFormatError
from repro.trace.records import (
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    EndRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
    TraceRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet

_MAGIC = b"RITC"
_VERSION = 1

# Record tags in the binary stream.
_TAG_BLOCK_NO_BRANCH = 0
_TAG_BLOCK_BRANCH = 1
_TAG_SYNC = 2
_TAG_IPC = 3
_TAG_END = 4

_HEADER = struct.Struct("<4sHHI")  # magic, version, thread_id, record_count
_BLOCK = struct.Struct("<QI")  # address, instruction_count
_BRANCH = struct.Struct("<BBQ")  # kind, taken, target
_SYNC = struct.Struct("<BI")  # kind, object_id
_IPC = struct.Struct("<d")  # ipc


def encode_thread_trace(trace: ThreadTrace) -> bytes:
    """Serialise one thread trace to the binary format."""
    buffer = io.BytesIO()
    buffer.write(_HEADER.pack(_MAGIC, _VERSION, trace.thread_id, len(trace.records)))
    for record in trace.records:
        _encode_record(buffer, record)
    return buffer.getvalue()


def _encode_record(buffer: io.BytesIO, record: TraceRecord) -> None:
    if isinstance(record, BasicBlockRecord):
        if record.branch is None:
            buffer.write(bytes([_TAG_BLOCK_NO_BRANCH]))
            buffer.write(_BLOCK.pack(record.address, record.instruction_count))
        else:
            buffer.write(bytes([_TAG_BLOCK_BRANCH]))
            buffer.write(_BLOCK.pack(record.address, record.instruction_count))
            buffer.write(
                _BRANCH.pack(
                    int(record.branch.kind),
                    int(record.branch.taken),
                    record.branch.target,
                )
            )
    elif isinstance(record, SyncRecord):
        buffer.write(bytes([_TAG_SYNC]))
        buffer.write(_SYNC.pack(int(record.kind), record.object_id))
    elif isinstance(record, IpcRecord):
        buffer.write(bytes([_TAG_IPC]))
        buffer.write(_IPC.pack(record.ipc))
    elif isinstance(record, EndRecord):
        buffer.write(bytes([_TAG_END]))
    else:  # pragma: no cover - exhaustive union
        raise TraceFormatError(f"cannot encode record of type {type(record).__name__}")


def decode_thread_trace(data: bytes) -> ThreadTrace:
    """Deserialise one thread trace from the binary format."""
    if len(data) < _HEADER.size:
        raise TraceFormatError("trace shorter than header")
    magic, version, thread_id, record_count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}, expected {_MAGIC!r}")
    if version != _VERSION:
        raise TraceFormatError(f"unsupported trace version {version}")
    offset = _HEADER.size
    records: list[TraceRecord] = []
    for _ in range(record_count):
        record, offset = _decode_record(data, offset)
        records.append(record)
    if offset != len(data):
        raise TraceFormatError(
            f"{len(data) - offset} trailing bytes after {record_count} records"
        )
    return ThreadTrace(thread_id=thread_id, records=records)


def _decode_record(data: bytes, offset: int) -> tuple[TraceRecord, int]:
    try:
        tag = data[offset]
    except IndexError as exc:
        raise TraceFormatError("truncated trace: missing record tag") from exc
    offset += 1
    try:
        if tag == _TAG_BLOCK_NO_BRANCH:
            address, count = _BLOCK.unpack_from(data, offset)
            return BasicBlockRecord(address, count), offset + _BLOCK.size
        if tag == _TAG_BLOCK_BRANCH:
            address, count = _BLOCK.unpack_from(data, offset)
            offset += _BLOCK.size
            kind, taken, target = _BRANCH.unpack_from(data, offset)
            branch = BranchOutcome(BranchKind(kind), bool(taken), target)
            return BasicBlockRecord(address, count, branch), offset + _BRANCH.size
        if tag == _TAG_SYNC:
            kind, object_id = _SYNC.unpack_from(data, offset)
            return SyncRecord(SyncKind(kind), object_id), offset + _SYNC.size
        if tag == _TAG_IPC:
            (ipc,) = _IPC.unpack_from(data, offset)
            return IpcRecord(ipc), offset + _IPC.size
        if tag == _TAG_END:
            return EndRecord(), offset
    except struct.error as exc:
        raise TraceFormatError("truncated trace record") from exc
    except ValueError as exc:
        raise TraceFormatError(f"invalid record field: {exc}") from exc
    raise TraceFormatError(f"unknown record tag {tag}")


def write_trace_set(trace_set: TraceSet, directory: str | Path) -> None:
    """Write one ``.trc`` file per thread plus a ``manifest.txt``.

    Mirrors the paper's "trace per thread / core" layout (Figure 6).
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest = [f"benchmark {trace_set.benchmark}", f"threads {trace_set.thread_count}"]
    for trace in trace_set.threads:
        file_name = f"thread_{trace.thread_id:03d}.trc"
        (path / file_name).write_bytes(encode_thread_trace(trace))
        manifest.append(file_name)
    (path / "manifest.txt").write_text("\n".join(manifest) + "\n")


def read_trace_set(directory: str | Path) -> TraceSet:
    """Read a trace set previously written by :func:`write_trace_set`."""
    path = Path(directory)
    manifest_path = path / "manifest.txt"
    if not manifest_path.exists():
        raise TraceFormatError(f"no manifest.txt in {path}")
    lines = manifest_path.read_text().splitlines()
    if len(lines) < 2 or not lines[0].startswith("benchmark "):
        raise TraceFormatError(f"malformed manifest in {path}")
    benchmark = lines[0].removeprefix("benchmark ")
    try:
        thread_count = int(lines[1].removeprefix("threads "))
    except ValueError as exc:
        raise TraceFormatError(f"malformed thread count in {manifest_path}") from exc
    file_names = lines[2:]
    if len(file_names) != thread_count:
        raise TraceFormatError(
            f"manifest lists {len(file_names)} files for {thread_count} threads"
        )
    threads = [
        decode_thread_trace((path / file_name).read_bytes()) for file_name in file_names
    ]
    return TraceSet(benchmark=benchmark, threads=threads)


def format_thread_trace(trace: ThreadTrace) -> str:
    """Render one thread trace in the human-readable text format."""
    lines = [f"# thread {trace.thread_id}"]
    for record in trace.records:
        if isinstance(record, BasicBlockRecord):
            if record.branch is None:
                lines.append(f"B {record.address:#x} {record.instruction_count}")
            else:
                branch = record.branch
                lines.append(
                    f"B {record.address:#x} {record.instruction_count} "
                    f"{branch.kind.name} {'T' if branch.taken else 'N'} {branch.target:#x}"
                )
        elif isinstance(record, SyncRecord):
            lines.append(f"S {record.kind.name} {record.object_id}")
        elif isinstance(record, IpcRecord):
            lines.append(f"I {record.ipc}")
        elif isinstance(record, EndRecord):
            lines.append("E")
    return "\n".join(lines) + "\n"


def parse_thread_trace(text: str) -> ThreadTrace:
    """Parse the text format produced by :func:`format_thread_trace`."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith("# thread "):
        raise TraceFormatError("text trace must start with '# thread <id>'")
    try:
        thread_id = int(lines[0].removeprefix("# thread "))
    except ValueError as exc:
        raise TraceFormatError("malformed thread id") from exc
    records: list[TraceRecord] = []
    for line_number, line in enumerate(lines[1:], start=2):
        records.append(_parse_text_record(line, line_number))
    return ThreadTrace(thread_id=thread_id, records=records)


def _parse_text_record(line: str, line_number: int) -> TraceRecord:
    fields = line.split()
    kind = fields[0]
    try:
        if kind == "B" and len(fields) == 3:
            return BasicBlockRecord(int(fields[1], 0), int(fields[2]))
        if kind == "B" and len(fields) == 6:
            branch = BranchOutcome(
                BranchKind[fields[3]], fields[4] == "T", int(fields[5], 0)
            )
            return BasicBlockRecord(int(fields[1], 0), int(fields[2]), branch)
        if kind == "S" and len(fields) == 3:
            return SyncRecord(SyncKind[fields[1]], int(fields[2]))
        if kind == "I" and len(fields) == 2:
            return IpcRecord(float(fields[1]))
        if kind == "E" and len(fields) == 1:
            return EndRecord()
    except (KeyError, ValueError) as exc:
        raise TraceFormatError(f"line {line_number}: invalid record '{line}'") from exc
    raise TraceFormatError(f"line {line_number}: unrecognised record '{line}'")
