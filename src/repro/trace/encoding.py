"""On-disk trace codecs.

Two interchangeable encodings are provided:

* a compact binary format (``.trc``) mirroring the paper's per-thread trace
  files — one file per thread plus a small set manifest; and
* a human-readable text format (``.trct``) convenient for debugging and for
  inspecting what the PinTool-equivalent synthesiser produced.

Both round-trip exactly (verified by property-based tests).
"""

from __future__ import annotations

import hashlib
import io
import struct
from pathlib import Path

from repro.errors import TraceFormatError
from repro.trace.records import (
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    EndRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
    TraceRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet

_MAGIC = b"RITC"
_VERSION = 1

# Record tags in the binary stream.
_TAG_BLOCK_NO_BRANCH = 0
_TAG_BLOCK_BRANCH = 1
_TAG_SYNC = 2
_TAG_IPC = 3
_TAG_END = 4

_HEADER = struct.Struct("<4sHHI")  # magic, version, thread_id, record_count
_BLOCK = struct.Struct("<QI")  # address, instruction_count
_BRANCH = struct.Struct("<BBQ")  # kind, taken, target
_SYNC = struct.Struct("<BI")  # kind, object_id
_IPC = struct.Struct("<d")  # ipc


def encode_thread_trace(trace: ThreadTrace) -> bytes:
    """Serialise one thread trace to the binary format."""
    buffer = io.BytesIO()
    buffer.write(_HEADER.pack(_MAGIC, _VERSION, trace.thread_id, len(trace.records)))
    for record in trace.records:
        _encode_record(buffer, record)
    return buffer.getvalue()


def _encode_record(buffer: io.BytesIO, record: TraceRecord) -> None:
    if isinstance(record, BasicBlockRecord):
        if record.branch is None:
            buffer.write(bytes([_TAG_BLOCK_NO_BRANCH]))
            buffer.write(_BLOCK.pack(record.address, record.instruction_count))
        else:
            buffer.write(bytes([_TAG_BLOCK_BRANCH]))
            buffer.write(_BLOCK.pack(record.address, record.instruction_count))
            buffer.write(
                _BRANCH.pack(
                    int(record.branch.kind),
                    int(record.branch.taken),
                    record.branch.target,
                )
            )
    elif isinstance(record, SyncRecord):
        buffer.write(bytes([_TAG_SYNC]))
        buffer.write(_SYNC.pack(int(record.kind), record.object_id))
    elif isinstance(record, IpcRecord):
        buffer.write(bytes([_TAG_IPC]))
        buffer.write(_IPC.pack(record.ipc))
    elif isinstance(record, EndRecord):
        buffer.write(bytes([_TAG_END]))
    else:  # pragma: no cover - exhaustive union
        raise TraceFormatError(f"cannot encode record of type {type(record).__name__}")


def decode_thread_trace(data: bytes) -> ThreadTrace:
    """Deserialise one thread trace from the binary format."""
    if len(data) < _HEADER.size:
        raise TraceFormatError("trace shorter than header")
    magic, version, thread_id, record_count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}, expected {_MAGIC!r}")
    if version != _VERSION:
        raise TraceFormatError(f"unsupported trace version {version}")
    offset = _HEADER.size
    records: list[TraceRecord] = []
    for _ in range(record_count):
        record, offset = _decode_record(data, offset)
        records.append(record)
    if offset != len(data):
        raise TraceFormatError(
            f"{len(data) - offset} trailing bytes after {record_count} records"
        )
    return ThreadTrace(thread_id=thread_id, records=records)


def _decode_record(data: bytes, offset: int) -> tuple[TraceRecord, int]:
    try:
        tag = data[offset]
    except IndexError as exc:
        raise TraceFormatError("truncated trace: missing record tag") from exc
    offset += 1
    try:
        if tag == _TAG_BLOCK_NO_BRANCH:
            address, count = _BLOCK.unpack_from(data, offset)
            return BasicBlockRecord(address, count), offset + _BLOCK.size
        if tag == _TAG_BLOCK_BRANCH:
            address, count = _BLOCK.unpack_from(data, offset)
            offset += _BLOCK.size
            kind, taken, target = _BRANCH.unpack_from(data, offset)
            branch = BranchOutcome(BranchKind(kind), bool(taken), target)
            return BasicBlockRecord(address, count, branch), offset + _BRANCH.size
        if tag == _TAG_SYNC:
            kind, object_id = _SYNC.unpack_from(data, offset)
            return SyncRecord(SyncKind(kind), object_id), offset + _SYNC.size
        if tag == _TAG_IPC:
            (ipc,) = _IPC.unpack_from(data, offset)
            return IpcRecord(ipc), offset + _IPC.size
        if tag == _TAG_END:
            return EndRecord(), offset
    except struct.error as exc:
        raise TraceFormatError("truncated trace record") from exc
    except ValueError as exc:
        raise TraceFormatError(f"invalid record field: {exc}") from exc
    raise TraceFormatError(f"unknown record tag {tag}")


# The chunked codec shares the record-level encoding: a ``.trcz`` chunk
# is a deflate-compressed run of exactly these byte sequences.
encode_record = _encode_record
decode_record = _decode_record


#: Metadata keys a manifest may carry ahead of its file list. Legacy
#: manifests (benchmark + threads only) predate ``format`` and
#: ``fingerprint``; readers treat both as optional.
_MANIFEST_KEYS = frozenset({"benchmark", "threads", "format", "fingerprint"})
_SET_FORMATS = ("trc", "trcz", "trct")


def write_trace_set(
    trace_set: TraceSet,
    directory: str | Path,
    *,
    chunked: bool = False,
    fmt: str | None = None,
    chunk_records: int | None = None,
) -> str:
    """Write one trace file per thread plus a ``manifest.txt``.

    Mirrors the paper's "trace per thread / core" layout (Figure 6).
    ``chunked=True`` (or ``fmt="trcz"``) selects the streamed chunked
    format; ``fmt`` may also name ``"trc"`` (eager binary, the default)
    or ``"trct"`` (text). The set's content fingerprint is computed in
    the same pass as the encode — streaming sources are written and
    digested without materialising — recorded in the manifest, and
    returned.
    """
    from repro.trace.chunked import DEFAULT_CHUNK_RECORDS, ChunkedTraceWriter
    from repro.trace.fingerprint import thread_digest_parts, trace_fingerprint

    if fmt is None:
        fmt = "trcz" if chunked else "trc"
    if fmt not in _SET_FORMATS:
        raise TraceFormatError(
            f"unknown trace set format {fmt!r}, expected one of {_SET_FORMATS}"
        )
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    file_names: list[str] = []
    if fmt == "trcz":
        cached = getattr(trace_set, "_warm_fingerprint", None)
        if cached is None:
            digest = hashlib.sha256()
            digest.update(
                f"{trace_set.benchmark}|{trace_set.thread_count}\n".encode()
            )
        for trace in trace_set.threads:
            file_name = f"thread_{trace.thread_id:03d}.trcz"
            with ChunkedTraceWriter(
                path / file_name,
                trace.thread_id,
                chunk_records=chunk_records or DEFAULT_CHUNK_RECORDS,
            ) as writer:
                if cached is not None:
                    writer.extend(trace.records)
                else:
                    # One pass: each record is encoded into the chunk
                    # buffer and folded into the set digest as it goes by.
                    def _tee(records, _writer=writer):
                        for record in records:
                            _writer.append(record)
                            yield record

                    for part in thread_digest_parts(_tee(trace.records)):
                        digest.update(part.encode())
                        digest.update(b"\n")
            file_names.append(file_name)
        fingerprint = cached if cached is not None else digest.hexdigest()[:16]
        try:
            trace_set._warm_fingerprint = fingerprint
        except AttributeError:
            pass
    else:
        fingerprint = trace_fingerprint(trace_set)
        for trace in trace_set.threads:
            file_name = f"thread_{trace.thread_id:03d}.{fmt}"
            if fmt == "trc":
                (path / file_name).write_bytes(encode_thread_trace(trace))
            else:
                (path / file_name).write_text(format_thread_trace(trace))
            file_names.append(file_name)
    manifest = [
        f"benchmark {trace_set.benchmark}",
        f"threads {trace_set.thread_count}",
        f"format {fmt}",
        f"fingerprint {fingerprint}",
        *file_names,
    ]
    (path / "manifest.txt").write_text("\n".join(manifest) + "\n")
    return fingerprint


def _parse_manifest(path: Path) -> tuple[str, int, str, str | None, list[str]]:
    """Parse ``manifest.txt`` -> (benchmark, threads, fmt, fingerprint, files).

    Tolerates both the legacy two-key form and unknown future keys;
    anything that is not a ``key value`` metadata line is a file name.
    """
    manifest_path = path / "manifest.txt"
    if not manifest_path.exists():
        raise TraceFormatError(f"no manifest.txt in {path}")
    meta: dict[str, str] = {}
    file_names: list[str] = []
    for line in manifest_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        key, _, value = line.partition(" ")
        if not file_names and value and key in _MANIFEST_KEYS:
            meta[key] = value
        else:
            file_names.append(line)
    if "benchmark" not in meta or "threads" not in meta:
        raise TraceFormatError(f"malformed manifest in {path}")
    try:
        thread_count = int(meta["threads"])
    except ValueError as exc:
        raise TraceFormatError(f"malformed thread count in {manifest_path}") from exc
    if len(file_names) != thread_count:
        raise TraceFormatError(
            f"manifest lists {len(file_names)} files for {thread_count} threads"
        )
    fmt = meta.get("format")
    if fmt is None:  # legacy manifests: infer from the first file name
        fmt = Path(file_names[0]).suffix.lstrip(".") if file_names else "trc"
    if fmt not in _SET_FORMATS:
        raise TraceFormatError(f"unknown trace set format {fmt!r} in {manifest_path}")
    return meta["benchmark"], thread_count, fmt, meta.get("fingerprint"), file_names


def read_trace_set(directory: str | Path) -> TraceSet:
    """Eagerly read a trace set written by :func:`write_trace_set`.

    Materialises every thread in memory regardless of on-disk format;
    for large ``.trcz`` corpora use :func:`open_trace_set` instead.
    """
    from repro.trace.chunked import ChunkedThreadReader, LazyThreadTrace

    path = Path(directory)
    benchmark, _, fmt, fingerprint, file_names = _parse_manifest(path)
    threads: list[ThreadTrace] = []
    for file_name in file_names:
        if fmt == "trc":
            threads.append(decode_thread_trace((path / file_name).read_bytes()))
        elif fmt == "trct":
            threads.append(parse_thread_trace((path / file_name).read_text()))
        else:
            reader = ChunkedThreadReader(path / file_name)
            threads.append(LazyThreadTrace(reader).materialize())
    trace_set = TraceSet(benchmark=benchmark, threads=threads)
    if fingerprint is not None:
        trace_set._warm_fingerprint = fingerprint
    return trace_set


def open_trace_set(directory: str | Path) -> TraceSet:
    """Open a trace set, streaming when the format allows it.

    ``.trcz`` sets come back as a
    :class:`~repro.trace.chunked.StreamedTraceSet` of lazy file-backed
    threads (O(chunk) residency); eager formats fall back to
    :func:`read_trace_set`. Both carry the manifest fingerprint, so
    checkpoint keys match runs made from the in-memory original.
    """
    from repro.trace.chunked import (
        ChunkedThreadReader,
        LazyThreadTrace,
        StreamedTraceSet,
    )

    path = Path(directory)
    benchmark, _, fmt, fingerprint, file_names = _parse_manifest(path)
    if fmt != "trcz":
        return read_trace_set(path)
    threads = [
        LazyThreadTrace(ChunkedThreadReader(path / file_name))
        for file_name in file_names
    ]
    return StreamedTraceSet(
        benchmark, threads, directory=path, fingerprint=fingerprint
    )


def format_thread_trace(trace: ThreadTrace) -> str:
    """Render one thread trace in the human-readable text format."""
    lines = [f"# thread {trace.thread_id}"]
    for record in trace.records:
        if isinstance(record, BasicBlockRecord):
            if record.branch is None:
                lines.append(f"B {record.address:#x} {record.instruction_count}")
            else:
                branch = record.branch
                lines.append(
                    f"B {record.address:#x} {record.instruction_count} "
                    f"{branch.kind.name} {'T' if branch.taken else 'N'} {branch.target:#x}"
                )
        elif isinstance(record, SyncRecord):
            lines.append(f"S {record.kind.name} {record.object_id}")
        elif isinstance(record, IpcRecord):
            lines.append(f"I {record.ipc}")
        elif isinstance(record, EndRecord):
            lines.append("E")
    return "\n".join(lines) + "\n"


def parse_thread_trace(text: str) -> ThreadTrace:
    """Parse the text format produced by :func:`format_thread_trace`."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith("# thread "):
        raise TraceFormatError("text trace must start with '# thread <id>'")
    try:
        thread_id = int(lines[0].removeprefix("# thread "))
    except ValueError as exc:
        raise TraceFormatError("malformed thread id") from exc
    records: list[TraceRecord] = []
    for line_number, line in enumerate(lines[1:], start=2):
        records.append(_parse_text_record(line, line_number))
    return ThreadTrace(thread_id=thread_id, records=records)


def _parse_text_record(line: str, line_number: int) -> TraceRecord:
    fields = line.split()
    kind = fields[0]
    try:
        if kind == "B" and len(fields) == 3:
            return BasicBlockRecord(int(fields[1], 0), int(fields[2]))
        if kind == "B" and len(fields) == 6:
            branch = BranchOutcome(
                BranchKind[fields[3]], fields[4] == "T", int(fields[5], 0)
            )
            return BasicBlockRecord(int(fields[1], 0), int(fields[2]), branch)
        if kind == "S" and len(fields) == 3:
            return SyncRecord(SyncKind[fields[1]], int(fields[2]))
        if kind == "I" and len(fields) == 2:
            return IpcRecord(float(fields[1]))
        if kind == "E" and len(fields) == 1:
            return EndRecord()
    except (KeyError, ValueError) as exc:
        raise TraceFormatError(f"line {line_number}: invalid record '{line}'") from exc
    raise TraceFormatError(f"line {line_number}: unrecognised record '{line}'")
