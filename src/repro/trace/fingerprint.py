"""Content fingerprints of trace sets.

Warm-state checkpoints, result provenance and the on-disk trace corpus
all need one answer to "is this the same instruction stream?". The
digest covers every record field that drives simulation and warming
(addresses, counts, branch outcomes, sync events, IPC values) and is
computed in one streaming pass, so file-backed
:class:`~repro.trace.chunked.LazyThreadTrace` sets fingerprint without
materialising.

The chunked trace writer stamps the fingerprint into each set's
manifest; :func:`repro.trace.encoding.open_trace_set` restores it as
the memoised value, so a streamed set and the in-memory set it was
captured from share checkpoint identities byte for byte.
"""

from __future__ import annotations

import hashlib

from repro.trace.records import BasicBlockRecord, IpcRecord, SyncRecord

__all__ = ["trace_fingerprint", "thread_digest_parts"]


def thread_digest_parts(records):
    """Yield the canonical digest line for each record, streaming."""
    for record in records:
        if isinstance(record, BasicBlockRecord):
            branch = record.branch
            if branch is None:
                yield f"B{record.address},{record.instruction_count}"
            else:
                yield (
                    f"B{record.address},{record.instruction_count},"
                    f"{int(branch.kind)},{int(branch.taken)},"
                    f"{branch.target}"
                )
        elif isinstance(record, SyncRecord):
            yield f"S{int(record.kind)},{record.object_id}"
        elif isinstance(record, IpcRecord):
            yield f"I{record.ipc!r}"
        else:
            yield "E"


def trace_fingerprint(traces) -> str:
    """Content digest of a trace set's records (memoised on the set).

    Checkpoints are a function of the exact instruction stream; keying
    them by ``(benchmark, seed, scale)`` alone would serve stale state
    after any change to the trace synthesizer. The walk is one pass per
    thread — each record contributes one canonical line — so lazy
    file-backed traces fingerprint in O(chunk) memory; streamed sets
    normally carry the fingerprint pre-computed from their manifest and
    never walk at all.
    """
    cached = getattr(traces, "_warm_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(f"{traces.benchmark}|{traces.thread_count}\n".encode())
    for thread in traces.threads:
        for part in thread_digest_parts(thread.records):
            digest.update(part.encode())
            digest.update(b"\n")
    fingerprint = digest.hexdigest()[:16]
    try:
        traces._warm_fingerprint = fingerprint
    except AttributeError:  # frozen/slotted trace sets: skip the memo
        pass
    return fingerprint
