"""Trace record types.

The paper's PinTool produces one trace file per thread containing the
sequence of executed instruction addresses, branch outcomes and targets,
OpenMP synchronisation events, and per-section IPC values (Section V-A,
Figure 6). We reproduce that format at *basic-block* granularity: each
:class:`BasicBlockRecord` covers a straight-line run of instructions and
carries the terminating branch, which preserves every piece of information
the PinTool traces record (instruction addresses are reconstructible from
block start + fixed instruction size) while keeping traces compact.

The front-end composes consecutive fall-through blocks into *fetch blocks*
(sequences ending at a taken branch), exactly as the paper's decoupled
front-end does with its FTQ.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Fixed instruction size in bytes. Worker cores model an ARM Cortex-A9,
#: a fixed-width 32-bit ISA, so four bytes per instruction throughout.
INSTRUCTION_BYTES = 4


class BranchKind(enum.IntEnum):
    """Classification of the branch terminating a basic block."""

    #: Conditional direct branch (the only kind the gshare predictor handles).
    CONDITIONAL = 0
    #: Unconditional direct branch or call; always taken, trivially predicted.
    UNCONDITIONAL = 1
    #: Indirect branch or return; target predicted via the BTB.
    INDIRECT = 2


class SyncKind(enum.IntEnum):
    """The five OpenMP synchronisation events of the paper (Section V-A)."""

    PARALLEL_START = 0
    PARALLEL_END = 1
    BARRIER = 2
    #: Wait on a critical section or semaphore object.
    WAIT = 3
    #: Signal (release) of a critical section or semaphore object.
    SIGNAL = 4


@dataclass(frozen=True, slots=True)
class BranchOutcome:
    """Recorded outcome of the branch ending a basic block.

    Attributes:
        kind: branch classification.
        taken: whether the branch was taken in this dynamic instance.
        target: branch target address (meaningful when taken).
    """

    kind: BranchKind
    taken: bool
    target: int

    def __post_init__(self) -> None:
        if self.target < 0:
            raise ValueError(f"branch target must be non-negative, got {self.target}")
        if self.kind is BranchKind.UNCONDITIONAL and not self.taken:
            raise ValueError("unconditional branches are always taken")


@dataclass(frozen=True, slots=True)
class BasicBlockRecord:
    """One dynamic basic block: straight-line instructions plus its branch.

    Attributes:
        address: byte address of the first instruction.
        instruction_count: number of instructions in the block (>= 1).
        branch: outcome of the terminating branch, or ``None`` when the
            block ends for a non-branch reason (e.g. end of trace or a
            synchronisation event follows).
    """

    address: int
    instruction_count: int
    branch: BranchOutcome | None = None

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"block address must be non-negative, got {self.address}")
        if self.instruction_count < 1:
            raise ValueError(
                f"block must contain at least one instruction, got {self.instruction_count}"
            )

    @property
    def size_bytes(self) -> int:
        """Block size in bytes (fixed-width instructions)."""
        return self.instruction_count * INSTRUCTION_BYTES

    @property
    def end_address(self) -> int:
        """Address one past the last byte of the block."""
        return self.address + self.size_bytes

    @property
    def branch_address(self) -> int:
        """Address of the terminating branch instruction (the last one)."""
        return self.address + (self.instruction_count - 1) * INSTRUCTION_BYTES

    @property
    def falls_through(self) -> bool:
        """True when control continues at :attr:`end_address`."""
        return self.branch is None or not self.branch.taken

    @property
    def next_address(self) -> int:
        """Address of the next executed instruction after this block."""
        if self.branch is not None and self.branch.taken:
            return self.branch.target
        return self.end_address


@dataclass(frozen=True, slots=True)
class SyncRecord:
    """An OpenMP synchronisation event injected into the trace.

    Attributes:
        kind: which of the five primitives this event is.
        object_id: identifier of the synchronisation object — the parallel
            region/phase for ``PARALLEL_START``/``PARALLEL_END``/``BARRIER``
            and the lock/semaphore id for ``WAIT``/``SIGNAL``.
    """

    kind: SyncKind
    object_id: int = 0

    def __post_init__(self) -> None:
        if self.object_id < 0:
            raise ValueError(f"object_id must be non-negative, got {self.object_id}")


@dataclass(frozen=True, slots=True)
class IpcRecord:
    """Sets the back-end commit rate for the following code section.

    Mirrors the paper's step 2 (Figure 6): IPC values measured with
    performance counters are spliced into the traces at each serial and
    parallel section boundary so the simulated back-end commits at the
    measured rate.
    """

    ipc: float

    def __post_init__(self) -> None:
        if not (0.0 < self.ipc <= 16.0):
            raise ValueError(f"IPC must be within (0, 16], got {self.ipc}")


@dataclass(frozen=True, slots=True)
class EndRecord:
    """Marks the end of a thread's trace."""


#: Union of everything that may appear in a per-thread trace.
TraceRecord = BasicBlockRecord | SyncRecord | IpcRecord | EndRecord
