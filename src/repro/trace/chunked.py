"""Streamed, chunked on-disk traces (``.trcz``).

The ``.trc`` binary format materialises a whole thread in memory on both
ends; billion-instruction captures cannot. This module adds a chunked
sibling: the same record encoding, deflate-compressed in fixed-size
record chunks, followed by a footer *chunk index* carrying each chunk's
file offset, first record index and cumulative instruction count — so a
reader can seek to any record or instruction position without decoding
the prefix.

File layout (one file per thread)::

    header   <4sHHIQQ>   magic "RITZ", version, thread_id,
                         chunk_records, record_count, total_instructions
    chunk 0  zlib-compressed concatenation of record encodings
    chunk 1  ...
    index    per chunk <QQQQ>: data offset, compressed length,
                               first record index, instructions before
    trailer  <QQ4s>      index offset, chunk count, magic "ZIDX"

The trailer sits at a fixed distance from EOF, so opening a trace reads
the trailer, the index and the header — never the chunks.
:class:`ChunkedTraceWriter` streams records in (a capture hook or a
converter never holds more than one chunk); :class:`ChunkedThreadReader`
streams them out through a tiny decoded-chunk LRU, and
:class:`LazyThreadTrace` / :class:`StreamedTraceSet` dress that reader
in the exact :class:`~repro.trace.stream.ThreadTrace` /
:class:`~repro.trace.stream.TraceSet` surfaces the slicer, the warmers
and both engines consume — iteration, ``len``, span slicing and O(1)
``instruction_count``.

Every structural defect (truncated file, foreign magic, index out of
bounds, corrupt deflate stream, trailing bytes inside a chunk) surfaces
as :class:`~repro.errors.TraceFormatError` naming the file and byte
offset, never as a silent short read.
"""

from __future__ import annotations

import io
import struct
import zlib
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.errors import TraceFormatError
from repro.trace.records import BasicBlockRecord, TraceRecord
from repro.trace.stream import ThreadTrace, TraceSet

__all__ = [
    "ChunkedThreadReader",
    "ChunkedTraceWriter",
    "LazyThreadTrace",
    "StreamedTraceSet",
    "write_thread_trace_chunked",
]

_Z_MAGIC = b"RITZ"
_Z_INDEX_MAGIC = b"ZIDX"
_Z_VERSION = 1

#: Records per compressed chunk. Decoded residency, seek granularity
#: and compression ratio all follow from this; a few thousand records
#: keeps a decoded chunk in the hundreds of KB.
DEFAULT_CHUNK_RECORDS = 4096

#: Decoded chunks a reader keeps alive at once. Two slots cover the
#: common access pair (sequential walk + one random probe) while
#: bounding resident records at ``2 * chunk_records``.
_CACHE_CHUNKS = 2

_Z_HEADER = struct.Struct("<4sHHIQQ")
_Z_ENTRY = struct.Struct("<QQQQ")
_Z_TRAILER = struct.Struct("<QQ4s")

# The shared record codec (tag + payload structs) lives in encoding.py;
# imported lazily at module bottom to keep the import cycle trivial.


def _corrupt(path: Path, offset: int, detail: str) -> TraceFormatError:
    return TraceFormatError(f"{path} @ byte {offset}: {detail}")


@dataclass(frozen=True)
class _ChunkEntry:
    """One chunk-index row (decoded form)."""

    offset: int  # file offset of the compressed payload
    length: int  # compressed payload length in bytes
    first_record: int  # index of the chunk's first record
    instructions_before: int  # dynamic instructions before the chunk


class ChunkedTraceWriter:
    """Streams one thread's records into a ``.trcz`` file.

    Never holds more than one chunk of encoded records, so a capture
    hook can persist traces far larger than memory. ``close()`` (or the
    context manager exit) seals the file: flushes the tail chunk,
    writes the index and trailer, and back-patches the header's record
    and instruction totals.
    """

    def __init__(
        self,
        path: str | Path,
        thread_id: int,
        *,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        compresslevel: int = 6,
    ) -> None:
        if chunk_records < 1:
            raise TraceFormatError(
                f"chunk_records must be >= 1, got {chunk_records}"
            )
        self.path = Path(path)
        self.thread_id = thread_id
        self.chunk_records = chunk_records
        self._compresslevel = compresslevel
        self._file = open(self.path, "wb")
        self._file.write(
            _Z_HEADER.pack(_Z_MAGIC, _Z_VERSION, thread_id, chunk_records, 0, 0)
        )
        self._entries: list[_ChunkEntry] = []
        self._buffer = io.BytesIO()
        self._buffered = 0
        self._records = 0
        self._instructions = 0
        self._closed = False

    def __enter__(self) -> "ChunkedTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        if exc_info[0] is None:
            self.close()
        else:  # don't seal a half-written file as valid
            self._file.close()
            self._closed = True

    def append(self, record: TraceRecord) -> None:
        """Encode one record into the current chunk."""
        encode_record(self._buffer, record)
        self._buffered += 1
        self._records += 1
        if isinstance(record, BasicBlockRecord):
            self._instructions += record.instruction_count
        if self._buffered >= self.chunk_records:
            self._flush_chunk()

    def extend(self, records) -> None:
        for record in records:
            self.append(record)

    def _flush_chunk(self) -> None:
        if self._buffered == 0:
            return
        payload = zlib.compress(self._buffer.getvalue(), self._compresslevel)
        self._entries.append(
            _ChunkEntry(
                offset=self._file.tell(),
                length=len(payload),
                first_record=self._records - self._buffered,
                instructions_before=self._instructions_at_chunk_start,
            )
        )
        self._file.write(payload)
        self._buffer = io.BytesIO()
        self._buffered = 0
        self._instructions_at_chunk_start = self._instructions

    #: Instructions emitted before the chunk currently being buffered.
    _instructions_at_chunk_start = 0

    def close(self) -> None:
        """Seal the file (idempotent)."""
        if self._closed:
            return
        self._flush_chunk()
        index_offset = self._file.tell()
        for entry in self._entries:
            self._file.write(
                _Z_ENTRY.pack(
                    entry.offset,
                    entry.length,
                    entry.first_record,
                    entry.instructions_before,
                )
            )
        self._file.write(
            _Z_TRAILER.pack(index_offset, len(self._entries), _Z_INDEX_MAGIC)
        )
        self._file.seek(0)
        self._file.write(
            _Z_HEADER.pack(
                _Z_MAGIC,
                _Z_VERSION,
                self.thread_id,
                self.chunk_records,
                self._records,
                self._instructions,
            )
        )
        self._file.close()
        self._closed = True


def write_thread_trace_chunked(
    path: str | Path,
    thread_id: int,
    records,
    *,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> None:
    """Write any iterable of records as one chunked thread file."""
    with ChunkedTraceWriter(
        path, thread_id, chunk_records=chunk_records
    ) as writer:
        writer.extend(records)


@dataclass
class ReaderStats:
    """Observability counters proving the O(chunk) residency contract."""

    chunks_decoded: int = 0
    #: Largest number of decoded records alive in the cache at once.
    max_resident_records: int = 0
    #: Smallest chunk ordinal ever decoded since the last reset.
    min_chunk_decoded: int | None = None


class ChunkedThreadReader:
    """Random/streamed access to one ``.trcz`` file via its chunk index.

    Opening reads only the trailer, index and header. Record access
    decodes whole chunks on demand through an LRU of
    ``cache_chunks`` decoded chunks, so resident decoded records stay
    O(chunk) no matter how much of the trace is walked.
    """

    def __init__(
        self, path: str | Path, *, cache_chunks: int = _CACHE_CHUNKS
    ) -> None:
        self.path = Path(path)
        self.stats = ReaderStats()
        self._cache: OrderedDict[int, list[TraceRecord]] = OrderedDict()
        self._cache_chunks = max(1, cache_chunks)
        try:
            size = self.path.stat().st_size
        except OSError as exc:
            raise TraceFormatError(f"{self.path}: {exc}") from exc
        if size < _Z_HEADER.size + _Z_TRAILER.size:
            raise _corrupt(
                self.path, size, "file shorter than header + trailer"
            )
        with open(self.path, "rb") as handle:
            header = handle.read(_Z_HEADER.size)
            magic, version, thread_id, chunk_records, records, instructions = (
                _Z_HEADER.unpack(header)
            )
            if magic != _Z_MAGIC:
                raise _corrupt(
                    self.path, 0, f"bad magic {magic!r}, expected {_Z_MAGIC!r}"
                )
            if version != _Z_VERSION:
                raise _corrupt(
                    self.path, 0, f"unsupported trace version {version}"
                )
            self.thread_id = thread_id
            self.chunk_records = chunk_records
            self.record_count = records
            self.total_instructions = instructions
            handle.seek(size - _Z_TRAILER.size)
            index_offset, chunk_count, index_magic = _Z_TRAILER.unpack(
                handle.read(_Z_TRAILER.size)
            )
            if index_magic != _Z_INDEX_MAGIC:
                raise _corrupt(
                    self.path,
                    size - _Z_TRAILER.size,
                    f"bad index magic {index_magic!r} (truncated file?)",
                )
            index_bytes = chunk_count * _Z_ENTRY.size
            if (
                index_offset < _Z_HEADER.size
                or index_offset + index_bytes + _Z_TRAILER.size > size
            ):
                raise _corrupt(
                    self.path,
                    index_offset,
                    f"chunk index ({chunk_count} entries) out of bounds",
                )
            handle.seek(index_offset)
            raw_index = handle.read(index_bytes)
            if len(raw_index) != index_bytes:
                raise _corrupt(self.path, index_offset, "truncated chunk index")
        self._entries = [
            _ChunkEntry(*_Z_ENTRY.unpack_from(raw_index, position))
            for position in range(0, index_bytes, _Z_ENTRY.size)
        ]
        self._data_end = index_offset
        for ordinal, entry in enumerate(self._entries):
            if entry.offset + entry.length > self._data_end:
                raise _corrupt(
                    self.path,
                    entry.offset,
                    f"chunk {ordinal} overruns the index region",
                )
        #: Per-chunk first-record / instructions-before arrays with an
        #: end sentinel, for bisect-based seeks.
        self._first_records = [e.first_record for e in self._entries]
        self._first_records.append(self.record_count)
        self._instruction_marks = [e.instructions_before for e in self._entries]
        self._instruction_marks.append(self.total_instructions)
        if self._entries and self._entries[0].first_record != 0:
            raise _corrupt(
                self.path, 0, "chunk index does not start at record 0"
            )
        if not self._entries and self.record_count:
            raise _corrupt(
                self.path, 0, f"{self.record_count} records but no chunks"
            )

    @property
    def chunk_count(self) -> int:
        return len(self._entries)

    def chunk_table(self) -> list[dict]:
        """The decoded index, one row per chunk (CLI ``index`` output)."""
        return [
            {
                "chunk": ordinal,
                "offset": entry.offset,
                "compressed_bytes": entry.length,
                "first_record": entry.first_record,
                "records": self._first_records[ordinal + 1]
                - entry.first_record,
                "instructions_before": entry.instructions_before,
                "instructions": self._instruction_marks[ordinal + 1]
                - entry.instructions_before,
            }
            for ordinal, entry in enumerate(self._entries)
        ]

    # -- chunk decode ------------------------------------------------------

    def _chunk(self, ordinal: int) -> list[TraceRecord]:
        cached = self._cache.get(ordinal)
        if cached is not None:
            self._cache.move_to_end(ordinal)
            return cached
        entry = self._entries[ordinal]
        with open(self.path, "rb") as handle:
            handle.seek(entry.offset)
            payload = handle.read(entry.length)
        if len(payload) != entry.length:
            raise _corrupt(
                self.path,
                entry.offset,
                f"chunk {ordinal} truncated "
                f"({len(payload)} of {entry.length} bytes)",
            )
        try:
            data = zlib.decompress(payload)
        except zlib.error as exc:
            raise _corrupt(
                self.path, entry.offset, f"chunk {ordinal} corrupt: {exc}"
            ) from exc
        expected = self._first_records[ordinal + 1] - entry.first_record
        records: list[TraceRecord] = []
        offset = 0
        try:
            for _ in range(expected):
                record, offset = decode_record(data, offset)
                records.append(record)
        except TraceFormatError as exc:
            raise _corrupt(
                self.path,
                entry.offset,
                f"chunk {ordinal}, record "
                f"{entry.first_record + len(records)}: {exc}",
            ) from exc
        if offset != len(data):
            raise _corrupt(
                self.path,
                entry.offset,
                f"chunk {ordinal} has {len(data) - offset} trailing bytes "
                f"after {expected} records",
            )
        self._cache[ordinal] = records
        stats = self.stats
        stats.chunks_decoded += 1
        if stats.min_chunk_decoded is None or ordinal < stats.min_chunk_decoded:
            stats.min_chunk_decoded = ordinal
        while len(self._cache) > self._cache_chunks:
            self._cache.popitem(last=False)
        resident = sum(len(chunk) for chunk in self._cache.values())
        if resident > stats.max_resident_records:
            stats.max_resident_records = resident
        return records

    def _chunk_for_record(self, index: int) -> int:
        return bisect_right(self._first_records, index, hi=self.chunk_count) - 1

    # -- record access -----------------------------------------------------

    def record(self, index: int) -> TraceRecord:
        if not 0 <= index < self.record_count:
            raise IndexError(index)
        ordinal = self._chunk_for_record(index)
        chunk = self._chunk(ordinal)
        return chunk[index - self._entries[ordinal].first_record]

    def iter_records(self, start: int = 0, end: int | None = None):
        """Yield records ``[start, end)``, decoding chunk by chunk.

        Seeks straight to the chunk containing ``start`` via the index;
        the prefix is never decoded.
        """
        end = self.record_count if end is None else min(end, self.record_count)
        if start >= end:
            return
        ordinal = self._chunk_for_record(start)
        position = start
        while position < end:
            first = self._entries[ordinal].first_record
            chunk = self._chunk(ordinal)
            stop = min(end - first, len(chunk))
            yield from chunk[position - first : stop]
            position = first + stop
            ordinal += 1

    def seek_instruction(self, target: int) -> tuple[int, int]:
        """Locate the instruction position ``target`` via the index.

        Returns ``(record_index, instructions_before)`` — the index of
        the first record at which the cumulative instruction count
        reaches or exceeds ``target``, and the cumulative count strictly
        before that record — decoding only the one chunk the index maps
        the position into (plus successors while a chunk boundary falls
        inside a block). Equivalent to scanning the whole prefix, which
        the property tests assert for random cut points.
        """
        if target <= 0:
            return 0, 0
        if target > self.total_instructions:
            return self.record_count, self.total_instructions
        ordinal = (
            bisect_right(self._instruction_marks, target - 1, hi=self.chunk_count)
            - 1
        )
        ordinal = max(0, ordinal)
        position = self._entries[ordinal].first_record
        cumulative = self._entries[ordinal].instructions_before
        for record in self.iter_records(position):
            if isinstance(record, BasicBlockRecord):
                if cumulative + record.instruction_count >= target:
                    return position, cumulative
                cumulative += record.instruction_count
            position += 1
        return position, cumulative


class _LazyRecords:
    """Sequence view over a :class:`ChunkedThreadReader`.

    Supports exactly the access patterns the simulator stack uses on a
    records list — ``len``, iteration, integer indexing and
    contiguous ``[start:end]`` slices (which materialise only the
    covered chunks) — while never holding more than the reader's cache.
    """

    __slots__ = ("_reader",)

    def __init__(self, reader: ChunkedThreadReader) -> None:
        self._reader = reader

    def __len__(self) -> int:
        return self._reader.record_count

    def __iter__(self):
        return self._reader.iter_records()

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(self._reader.record_count)
            if step != 1:
                raise TraceFormatError(
                    "streamed traces support only contiguous slices"
                )
            return list(self._reader.iter_records(start, stop))
        if item < 0:
            item += self._reader.record_count
        return self._reader.record(item)


class LazyThreadTrace(ThreadTrace):
    """A :class:`ThreadTrace` whose records stream from a ``.trcz`` file.

    Drop-in for the in-memory class everywhere the simulator stack
    touches traces: ``records`` is a lazy sequence (len / iterate /
    index / span-slice), ``instruction_count`` comes from the header in
    O(1), and the region iterators inherited from
    :class:`~repro.trace.stream.ThreadTrace` walk chunk by chunk.
    """

    def __init__(self, reader: ChunkedThreadReader) -> None:
        super().__init__(
            thread_id=reader.thread_id, records=_LazyRecords(reader)
        )
        self.reader = reader

    @property
    def instruction_count(self) -> int:
        return self.reader.total_instructions

    def materialize(self) -> ThreadTrace:
        """An eager in-memory copy (``.trcz`` -> ``.trc`` conversion)."""
        return ThreadTrace(
            thread_id=self.thread_id, records=list(self.records)
        )


class StreamedTraceSet(TraceSet):
    """A :class:`TraceSet` of :class:`LazyThreadTrace` threads.

    Carries the directory it was opened from and, when the manifest
    recorded one, the content fingerprint — pre-seeding the memo
    :func:`repro.trace.fingerprint.trace_fingerprint` consults, so
    checkpoint keys match the in-memory set the files were captured
    from without a decoding pass.
    """

    def __init__(
        self,
        benchmark: str,
        threads: list[LazyThreadTrace],
        *,
        directory: str | Path | None = None,
        fingerprint: str | None = None,
    ) -> None:
        super().__init__(benchmark=benchmark, threads=threads)
        self.directory = Path(directory) if directory is not None else None
        if fingerprint is not None:
            self._warm_fingerprint = fingerprint

    @property
    def instruction_count(self) -> int:
        return sum(trace.reader.total_instructions for trace in self.threads)

    def materialize(self) -> TraceSet:
        """An eager in-memory copy of the whole set."""
        return TraceSet(
            benchmark=self.benchmark,
            threads=[trace.materialize() for trace in self.threads],
        )


# Shared record codec, imported last: encoding.py imports the container
# classes above, so a top-of-module import would be circular.
from repro.trace.encoding import decode_record, encode_record  # noqa: E402
