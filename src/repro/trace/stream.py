"""Trace containers and peekable streams consumed by the simulator."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.trace.records import (
    BasicBlockRecord,
    EndRecord,
    SyncKind,
    SyncRecord,
    TraceRecord,
)


@dataclass
class ThreadTrace:
    """The full recorded stream of one thread.

    Attributes:
        thread_id: zero-based thread index; thread 0 is the master.
        records: the ordered trace records.
    """

    thread_id: int
    records: list[TraceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.thread_id < 0:
            raise TraceError(f"thread_id must be non-negative, got {self.thread_id}")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def instruction_count(self) -> int:
        """Total dynamic instructions in the trace."""
        return sum(
            record.instruction_count
            for record in self.records
            if isinstance(record, BasicBlockRecord)
        )

    def basic_blocks(self) -> Iterator[BasicBlockRecord]:
        """Iterate over only the basic-block records."""
        for record in self.records:
            if isinstance(record, BasicBlockRecord):
                yield record

    def parallel_region_blocks(self) -> Iterator[BasicBlockRecord]:
        """Iterate over basic blocks executed inside parallel regions."""
        depth = 0
        for record in self.records:
            if isinstance(record, SyncRecord):
                if record.kind is SyncKind.PARALLEL_START:
                    depth += 1
                elif record.kind is SyncKind.PARALLEL_END:
                    depth -= 1
                    if depth < 0:
                        raise TraceError(
                            f"thread {self.thread_id}: PARALLEL_END without start"
                        )
            elif isinstance(record, BasicBlockRecord) and depth > 0:
                yield record

    def serial_region_blocks(self) -> Iterator[BasicBlockRecord]:
        """Iterate over basic blocks executed outside parallel regions."""
        depth = 0
        for record in self.records:
            if isinstance(record, SyncRecord):
                if record.kind is SyncKind.PARALLEL_START:
                    depth += 1
                elif record.kind is SyncKind.PARALLEL_END:
                    depth -= 1
            elif isinstance(record, BasicBlockRecord) and depth == 0:
                yield record


@dataclass
class TraceSet:
    """A complete multi-threaded application trace.

    Attributes:
        benchmark: benchmark name the traces were generated from.
        threads: per-thread traces, indexed by thread id; ``threads[0]``
            is the master thread (the only one that executes serial code).
    """

    benchmark: str
    threads: list[ThreadTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        for index, trace in enumerate(self.threads):
            if trace.thread_id != index:
                raise TraceError(
                    f"thread {index} of '{self.benchmark}' has id {trace.thread_id}"
                )

    @property
    def thread_count(self) -> int:
        return len(self.threads)

    @property
    def master(self) -> ThreadTrace:
        if not self.threads:
            raise TraceError(f"trace set '{self.benchmark}' has no threads")
        return self.threads[0]

    @property
    def workers(self) -> list[ThreadTrace]:
        return self.threads[1:]

    @property
    def instruction_count(self) -> int:
        return sum(trace.instruction_count for trace in self.threads)


class TraceStream:
    """Peekable single-consumer cursor over one thread's records.

    The front-end needs one record of lookahead (to know whether the next
    record is a synchronisation event before committing to fetch past it),
    which :meth:`peek` provides without consuming.
    """

    def __init__(self, records: Iterable[TraceRecord]):
        self._iterator = iter(records)
        self._lookahead: TraceRecord | None = None
        self._exhausted = False
        self._consumed = 0

    @property
    def consumed(self) -> int:
        """Number of records handed out so far."""
        return self._consumed

    def peek(self) -> TraceRecord:
        """Return the next record without consuming it.

        Returns an :class:`EndRecord` once the underlying stream is done.
        """
        if self._lookahead is None and not self._exhausted:
            try:
                self._lookahead = next(self._iterator)
            except StopIteration:
                self._exhausted = True
        if self._lookahead is None:
            return EndRecord()
        return self._lookahead

    def next(self) -> TraceRecord:
        """Consume and return the next record (EndRecord when exhausted)."""
        record = self.peek()
        if not isinstance(record, EndRecord):
            self._lookahead = None
            self._consumed += 1
        return record

    @property
    def exhausted(self) -> bool:
        """True when no records remain (peek would return EndRecord)."""
        return isinstance(self.peek(), EndRecord)
