"""Interval-sampled simulation: trade bounded error for wall time.

Runs the UA sharing comparison (the paper's headline experiment) twice —
once in full detail, once under the ``fast`` sampling plan — and prints
the wall-time reduction, the agreement of the reported slowdown, and
the sampled run's own error estimate.

Run with::

    PYTHONPATH=src python examples/sampled_simulation.py
"""

import time

from repro import (
    baseline_config,
    simulate,
    simulate_sampled,
    synthesize_benchmark,
    worker_shared_config,
)
from repro.sampling import resolve_plan


def timed(fn, *args, **kwargs):
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def main() -> None:
    traces = synthesize_benchmark("UA", thread_count=9, scale=1.0)
    plan = resolve_plan("fast")
    print(
        f"plan {plan.spec()}: coverage {plan.coverage:.1%}, "
        f"{plan.warmup_instructions} warmed instructions per skip span"
    )

    configs = {
        "baseline": baseline_config(),
        "shared": worker_shared_config(),
    }
    full, sampled = {}, {}
    full_s = sampled_s = 0.0
    for name, config in configs.items():
        full[name], seconds = timed(simulate, config, traces)
        full_s += seconds
        sampled[name], seconds = timed(
            simulate_sampled, config, traces, plan
        )
        sampled_s += seconds

    ratio_full = full["shared"].cycles / full["baseline"].cycles
    ratio_sampled = sampled["shared"].cycles / sampled["baseline"].cycles
    info = sampled["baseline"].sampling
    print(f"full runs:    {full_s:.2f}s, shared/baseline = {ratio_full:.4f}")
    print(
        f"sampled runs: {sampled_s:.2f}s ({full_s / sampled_s:.1f}x "
        f"faster), shared/baseline = {ratio_sampled:.4f} "
        f"({abs(ratio_sampled - ratio_full) / ratio_full:.2%} off)"
    )
    print(
        f"sampled payload: measured "
        f"{info['measured_instructions']}/{info['total_instructions']} "
        f"instructions over {info['intervals']['detail']} detail "
        f"intervals; error estimates {info['errors']}"
    )


if __name__ == "__main__":
    main()
