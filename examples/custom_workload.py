#!/usr/bin/env python3
"""Define a custom workload model, trace it to disk, and simulate it.

Shows the full user-facing pipeline for code not covered by the 24 bundled
benchmarks:

1. describe an application statistically with a WorkloadModel;
2. synthesise per-thread traces (the Pin-equivalent step);
3. write them to disk in the binary trace format and read them back;
4. validate the synchronisation protocol;
5. simulate baseline vs shared and characterise the difference.

Run:
    python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import (
    WorkloadModel,
    baseline_config,
    simulate,
    synthesize,
    worker_shared_config,
)
from repro.analysis import basic_block_profile, sharing_profile
from repro.trace import read_trace_set, validate_trace_set, write_trace_set

# A stencil-like kernel: long parallel basic blocks, small hot loops,
# modest serial setup, no appreciable steady-state I-cache misses.
STENCIL = WorkloadModel(
    name="stencil3d",
    suite="NPB",  # suite tag only groups reporting
    serial_fraction=0.04,
    bb_bytes_serial=32,
    bb_bytes_parallel=220,
    loop_body_bytes_serial=256,
    loop_body_bytes_parallel=1536,
    inner_trips_serial=20,
    inner_trips_parallel=24,
    footprint_serial_bytes=4 * 1024,
    footprint_parallel_bytes=9 * 1024,
    cold_mpki_serial=15.0,
    cold_mpki_parallel=0.0,
    branch_mpki_serial=4.0,
    branch_mpki_parallel=1.0,
    sharing_dynamic=0.99,
    sharing_static=0.97,
    ipc_master_serial=1.8,
    ipc_master_parallel=2.2,
    ipc_worker_parallel=0.85,
    parallel_phases=3,
    uses_critical_sections=False,
    imbalance=0.03,
    parallel_instructions=30_000,
)


def main() -> None:
    print("Synthesising the custom 'stencil3d' workload...")
    traces = synthesize(STENCIL, thread_count=9, scale=0.5)

    with tempfile.TemporaryDirectory() as tmp:
        trace_dir = Path(tmp) / "stencil3d-traces"
        write_trace_set(traces, trace_dir)
        loaded = read_trace_set(trace_dir)
        files = sorted(p.name for p in trace_dir.iterdir())
        print(f"  wrote {len(files)} files: {files[:3]} ...")

    report = validate_trace_set(loaded)
    print(
        f"  validated: {report.thread_count} threads, "
        f"{report.total_instructions:,} instructions, "
        f"{report.parallel_phase_count} parallel phases"
    )

    profile = basic_block_profile(loaded.master)
    sharing = sharing_profile(loaded)
    print(
        f"  basic blocks: serial {profile.serial_mean_bytes:.0f} B, "
        f"parallel {profile.parallel_mean_bytes:.0f} B"
    )
    print(f"  dynamic instruction sharing: {sharing.dynamic_sharing * 100:.1f}%\n")

    base = simulate(baseline_config(), loaded)
    shared = simulate(worker_shared_config(), loaded)
    print(f"baseline cycles          {base.cycles:>10,}")
    print(
        f"shared 16KB+double bus   {shared.cycles:>10,}  "
        f"({shared.cycles / base.cycles:.3f}x)"
    )
    print(
        f"worker I-cache misses    {base.worker_icache_misses():>10,} -> "
        f"{shared.worker_icache_misses():,}"
    )


if __name__ == "__main__":
    main()
