#!/usr/bin/env python3
"""Quickstart: simulate one HPC benchmark on the baseline and on the
paper's proposed shared-I-cache ACMP, and compare them.

Builds the UA workload (the paper's most bus-sensitive benchmark), runs
three design points — private I-caches, naive sharing over a single bus,
and the chosen 16 KB shared cache behind a double bus — and prints the
execution time ratios, miss counts and the area/energy assessment.

Run:
    python examples/quickstart.py
"""

from repro import (
    baseline_config,
    evaluate_power,
    simulate,
    synthesize_benchmark,
    worker_shared_config,
)

BENCHMARK = "UA"


def main() -> None:
    print(f"Synthesising traces for {BENCHMARK} (1 master + 8 workers)...")
    traces = synthesize_benchmark(BENCHMARK, thread_count=9, scale=0.5)
    print(f"  {traces.instruction_count:,} dynamic instructions\n")

    designs = {
        "baseline (private 32KB)": baseline_config(),
        "naive sharing (32KB, single bus)": worker_shared_config(
            cores_per_cache=8, icache_kb=32, bus_count=1, line_buffers=4
        ),
        "proposal (16KB, double bus)": worker_shared_config(),
    }

    base_result = None
    base_power = None
    for label, config in designs.items():
        result = simulate(config, traces)
        power = evaluate_power(result, config)
        if base_result is None:
            base_result = result
            base_power = power
        time_ratio = result.cycles / base_result.cycles
        area_ratio = power.area_mm2 / base_power.area_mm2
        energy_ratio = power.energy_nj / base_power.energy_nj
        print(f"{label}")
        print(f"  cycles            {result.cycles:>10,}  ({time_ratio:.3f}x)")
        print(f"  worker I-misses   {result.worker_icache_misses():>10,}")
        print(f"  worker MPKI       {result.worker_icache_mpki():>10.3f}")
        print(f"  cluster area      {power.area_mm2:>10.2f} mm2 ({area_ratio:.3f}x)")
        print(f"  cluster energy    {power.energy_nj / 1e3:>10.1f} uJ  ({energy_ratio:.3f}x)")
        print()

    print(
        "Expected shape (paper): naive single-bus sharing slows UA down,\n"
        "the double bus restores baseline performance while saving ~11%\n"
        "area and ~5% energy, and sharing cuts worker I-cache misses."
    )


if __name__ == "__main__":
    main()
