#!/usr/bin/env python3
"""All-shared study: should the master core share the I-cache too?

Reproduces the Section VI-E analysis on a few benchmarks spanning the
serial-fraction axis: compares the all-shared design (master + workers
behind one 32 KB shared I-cache) against the worker-shared design, and
shows how the penalty tracks the serial code fraction — plus the single
bus variant that exposes the scalability limit (Group 3).

Run:
    python examples/all_shared_study.py
"""

from repro import (
    all_shared_config,
    get_benchmark,
    simulate,
    synthesize_benchmark,
    worker_shared_config,
)
from repro.analysis import format_table

#: Spans the Fig. 13 x-axis: EP (<1 % serial) through CoMD (~17 %).
BENCHMARKS = ("EP", "UA", "fma3d", "CoEVP", "LULESH", "CoMD")
SCALE = 0.35


def main() -> None:
    rows = []
    for name in BENCHMARKS:
        traces = synthesize_benchmark(name, thread_count=9, scale=SCALE)
        worker_double = simulate(
            worker_shared_config(
                cores_per_cache=8, icache_kb=32, bus_count=2, line_buffers=4
            ),
            traces,
        )
        worker_single = simulate(
            worker_shared_config(
                cores_per_cache=8, icache_kb=32, bus_count=1, line_buffers=4
            ),
            traces,
        )
        all_double = simulate(all_shared_config(icache_kb=32, bus_count=2), traces)
        all_single = simulate(all_shared_config(icache_kb=32, bus_count=1), traces)
        model = get_benchmark(name)
        rows.append(
            [
                name,
                model.serial_fraction * 100,
                all_double.cycles / worker_double.cycles,
                all_single.cycles / worker_single.cycles,
            ]
        )
    rows.sort(key=lambda row: row[1])
    print(
        format_table(
            ["benchmark", "serial %", "all/worker (double)", "all/worker (single)"],
            rows,
        )
    )
    print(
        "\nExpected shape (paper Fig. 13): the double-bus ratio grows with"
        "\nthe serial fraction (~1% per 5% serial); with a single bus the"
        "\nbus-saturated codes (EP, UA) degrade even at low serial fractions."
        "\nConclusion: keep the master core's I-cache private."
    )


if __name__ == "__main__":
    main()
