#!/usr/bin/env python3
"""Multi-seed campaign with persisted results.

Trace synthesis is randomised; any reported ratio should be robust across
trace realisations. This example declares the headline comparison
(baseline vs the 16 KB shared / double-bus proposal) over several seeds
as a :class:`repro.Campaign`, executes it through the campaign runner
with a persistent result store, re-runs it to show the store serving
every run from cache, and reports mean and spread of the execution-time
ratio — the reproducibility hygiene a real evaluation needs.

Run:
    python examples/campaign_with_seeds.py
"""

import statistics
import tempfile

from repro import Campaign, ResultStore, baseline_config, run_campaign, worker_shared_config

BENCHMARK = "FT"
SEEDS = (0, 1, 2, 3)
SCALE = 0.25


def main() -> None:
    base_config = baseline_config()
    shared_config = worker_shared_config()
    campaign = Campaign(
        name="headline-vs-seeds",
        benchmarks=(BENCHMARK,),
        design_points=(base_config, shared_config),
        seeds=SEEDS,
        scale=SCALE,
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        report = run_campaign(campaign, store=store)
        print(report.summary())

        ratios = []
        for seed in SEEDS:
            base = report.results[
                ("acmp", BENCHMARK, base_config.label(), seed, SCALE)
            ]
            shared = report.results[
                ("acmp", BENCHMARK, shared_config.label(), seed, SCALE)
            ]
            ratios.append(shared.cycles / base.cycles)
            print(
                f"seed {seed}: baseline {base.cycles:>7,} cycles, "
                f"shared {shared.cycles:>7,} cycles, ratio {ratios[-1]:.4f}"
            )

        # A second invocation never simulates: every run is served from
        # the persistent store.
        rerun = run_campaign(campaign, store=store)
        print(
            f"\nrerun: {rerun.cached}/{rerun.total} runs served from the "
            f"store in {rerun.wall_seconds:.2f}s"
        )

    mean = statistics.mean(ratios)
    spread = statistics.stdev(ratios) if len(ratios) > 1 else 0.0
    print(
        f"\n{BENCHMARK}: shared/baseline execution time = "
        f"{mean:.4f} +/- {spread:.4f} over {len(SEEDS)} trace realisations"
    )
    print("paper's claim: no performance cost (ratio ~1.00)")


if __name__ == "__main__":
    main()
