#!/usr/bin/env python3
"""Multi-seed campaign with persisted results.

Trace synthesis is randomised; any reported ratio should be robust across
trace realisations. This example runs the headline comparison (baseline vs
the 16 KB shared / double-bus proposal) over several seeds, persists every
run as JSON, reloads the campaign, and reports mean and spread of the
execution-time ratio — the reproducibility hygiene a real evaluation needs.

Run:
    python examples/campaign_with_seeds.py
"""

import statistics
import tempfile
from pathlib import Path

from repro import baseline_config, simulate, worker_shared_config
from repro.acmp import load_results, save_results
from repro.trace.synthesis import synthesize_benchmark

BENCHMARK = "FT"
SEEDS = (0, 1, 2, 3)
SCALE = 0.25


def main() -> None:
    base_config = baseline_config()
    shared_config = worker_shared_config()
    runs = []
    ratios = []
    for seed in SEEDS:
        traces = synthesize_benchmark(
            BENCHMARK, thread_count=9, scale=SCALE, seed=seed
        )
        base = simulate(base_config, traces)
        shared = simulate(shared_config, traces)
        runs += [base, shared]
        ratios.append(shared.cycles / base.cycles)
        print(
            f"seed {seed}: baseline {base.cycles:>7,} cycles, "
            f"shared {shared.cycles:>7,} cycles, ratio {ratios[-1]:.4f}"
        )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campaign.json"
        save_results(runs, path)
        reloaded = load_results(path)
        print(f"\npersisted and reloaded {len(reloaded)} runs from {path.name}")

    mean = statistics.mean(ratios)
    spread = statistics.stdev(ratios) if len(ratios) > 1 else 0.0
    print(
        f"\n{BENCHMARK}: shared/baseline execution time = "
        f"{mean:.4f} +/- {spread:.4f} over {len(SEEDS)} trace realisations"
    )
    print("paper's claim: no performance cost (ratio ~1.00)")


if __name__ == "__main__":
    main()
