#!/usr/bin/env python3
"""Design-space exploration: sweep sharing degree, line buffers and bus
count for a set of benchmarks, reporting time/area/energy per point.

This is the kind of study Section VI performs to find the sweet spot
("a wide interconnect ... and a few line buffers"). The sweep covers:

* cores-per-cache (cpc) in {2, 4, 8},
* 2/4/8 line buffers,
* single and double buses,
* 16 KB and 32 KB shared I-caches,

and prints a ranked table of the Pareto-interesting points.

Run:
    python examples/design_space_exploration.py [benchmark ...]
"""

import sys

from repro import (
    baseline_config,
    evaluate_power,
    simulate,
    synthesize_benchmark,
    worker_shared_config,
)
from repro.analysis import format_table

DEFAULT_BENCHMARKS = ("CG", "UA", "LULESH")
SCALE = 0.35


def sweep(benchmarks: list[str]) -> None:
    trace_sets = {
        name: synthesize_benchmark(name, thread_count=9, scale=SCALE)
        for name in benchmarks
    }
    base_config = baseline_config()
    base_runs = {name: simulate(base_config, ts) for name, ts in trace_sets.items()}
    base_power = {
        name: evaluate_power(run, base_config) for name, run in base_runs.items()
    }

    rows = []
    for cpc in (2, 4, 8):
        for icache_kb in (16, 32):
            for line_buffers in (2, 4, 8):
                for bus_count in (1, 2):
                    config = worker_shared_config(
                        cores_per_cache=cpc,
                        icache_kb=icache_kb,
                        bus_count=bus_count,
                        line_buffers=line_buffers,
                    )
                    time_ratios = []
                    energy_ratios = []
                    area_ratio = 0.0
                    for name, traces in trace_sets.items():
                        result = simulate(config, traces)
                        power = evaluate_power(result, config)
                        time_ratios.append(
                            result.cycles / base_runs[name].cycles
                        )
                        energy_ratios.append(
                            power.energy_nj / base_power[name].energy_nj
                        )
                        area_ratio = power.area_mm2 / base_power[name].area_mm2
                    rows.append(
                        [
                            config.label(),
                            sum(time_ratios) / len(time_ratios),
                            sum(energy_ratios) / len(energy_ratios),
                            area_ratio,
                        ]
                    )
    # Rank: first points that do not hurt performance, then by area.
    rows.sort(key=lambda row: (row[1] > 1.005, row[3], row[1]))
    print(
        format_table(
            ["design point", "time (mean)", "energy (mean)", "area"], rows
        )
    )
    best = rows[0]
    print(
        f"\nbest no-regression point: {best[0]} "
        f"(time {best[1]:.3f}, energy {best[2]:.3f}, area {best[3]:.3f})"
    )
    print("paper's choice: cpc=8::16KB::4lb::double-bus")


def main() -> None:
    benchmarks = sys.argv[1:] or list(DEFAULT_BENCHMARKS)
    print(f"Exploring the design space over {benchmarks} (scale {SCALE})...\n")
    sweep(benchmarks)


if __name__ == "__main__":
    main()
