#!/usr/bin/env python3
"""Working with machine models: the ACMP vs a symmetric CMP.

The simulator is machine-model agnostic: a configuration's type
identifies its machine through the registry (``repro.machine``), and
``simulate`` builds and runs whichever system the config describes.
This example

1. lists the registered models and their sweepable dimensions,
2. runs one benchmark on the paper's ACMP baseline and on a symmetric
   CMP of nine uniform lean cores (serial phases replayed at the lean
   core's commit rate), and
3. sweeps per-core vs banked front-ends on the symmetric machine —
   the scenario axis the ACMP-only stack could not express.

Run:
    python examples/machine_models.py
"""

from repro import (
    baseline_config,
    banked_config,
    get_model,
    model_names,
    private_config,
    simulate,
    synthesize_benchmark,
)

BENCHMARK = "CoMD"  # a code with a real serial fraction
SCALE = 0.25


def main() -> None:
    print("registered machine models:")
    for name in model_names():
        model = get_model(name)
        dims = ", ".join(model.config_space())
        print(f"  {name:5s} sweeps: {dims}")

    # -- cross-machine comparison at matched parallel width ------------
    traces = synthesize_benchmark(BENCHMARK, thread_count=9, scale=SCALE)
    acmp = simulate(baseline_config(), traces)
    scmp = simulate(private_config(core_count=9), traces)
    print(
        f"\n{BENCHMARK}: ACMP {acmp.cycles:,} cycles vs symmetric CMP "
        f"{scmp.cycles:,} cycles -> ACMP speedup "
        f"{scmp.cycles / acmp.cycles:.3f} (serial phases run on the big "
        f"master only the ACMP has)"
    )

    # -- per-core vs banked front-ends on the symmetric machine --------
    traces8 = synthesize_benchmark(BENCHMARK, thread_count=8, scale=SCALE)
    base = simulate(private_config(), traces8)
    print("\nsymmetric CMP, per-core vs banked shared front-ends:")
    print(f"  private 32KB per core: {base.cycles:,} cycles (1.000)")
    for cpc in (2, 4, 8):
        banked = simulate(
            banked_config(cores_per_cache=cpc, icache_kb=32, bus_count=1),
            traces8,
        )
        print(
            f"  one 32KB bank per {cpc} cores: {banked.cycles:,} cycles "
            f"({banked.cycles / base.cycles:.3f})"
        )


if __name__ == "__main__":
    main()
